//! The fault-sweep grid: protocol survival as a function of loss rate
//! and crash count.
//!
//! For every cell of a (loss rate × crash count) grid this module runs
//! the robust marching protocols — ack/retransmit flooding and the
//! robust hop field ([`anr_netgraph::robust`]) — on a deployment's
//! connectivity graph under a seeded [`FaultPlan`], and records:
//!
//! * **converged** — did the protocol terminate (all retransmission
//!   queues drained) within the round budget?
//! * **correct** — do the surviving robots' results match the
//!   centralized reference computed on the *live* topology (crashed
//!   robots excluded)?
//! * **rounds-to-quiescence** and **message counts** — the price paid,
//!   reported alongside `overhead_permille`, messages relative to the
//!   same protocol's zero-fault baseline (1000 = parity).
//!
//! Crashes are scheduled at round 0 (the robots never participate), so
//! the reference is well defined: the remaining swarm on the remaining
//! links. Everything is a pure function of the config's seed — two runs
//! of the same sweep are identical, cell by cell.
//!
//! [`FaultSweepReport::to_json`] emits the grid as a self-contained
//! JSON document for the `fault-sweep` CLI subcommand and the
//! `fault_sweep` bench binary.

use anr_distsim::{FaultPlan, FaultStats, FaultySimulator, SimError};
use anr_eventsim::{EventNode, EventSim, ExplicitTopology};
use anr_geom::Point;
use anr_netgraph::robust::{RetransmitConfig, RobustFloodNode, RobustHopFieldNode};
use anr_netgraph::UnitDiskGraph;
use anr_trace::{TraceValue, Tracer};

/// Which simulation engine executes the sweep's cell runs.
///
/// The engines are bit-identical under any common fault plan (pinned
/// by `anr-eventsim`'s equivalence tests), so the choice affects cost,
/// not results: the event engine skips dormant robots and empty
/// rounds, which is what makes 10⁵–10⁶-robot sweeps affordable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepEngine {
    /// The round-stepping [`FaultySimulator`] — `Θ(n)` per round.
    #[default]
    Synchronous,
    /// The discrete-event [`EventSim`] — `Θ(active)` per round.
    Event,
}

/// Which robust protocols a sweep exercises.
///
/// Flooding keeps `O(n)` state per robot (every robot learns every
/// value), so it is intentionally deselectable for large-`n` sweeps
/// where the hop field is the scalable representative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepProtocols {
    /// Ack/retransmit flooding of per-robot values.
    pub flooding: bool,
    /// The robust multi-source hop field.
    pub hop_field: bool,
}

impl Default for SweepProtocols {
    fn default() -> Self {
        SweepProtocols {
            flooding: true,
            hop_field: true,
        }
    }
}

/// Parameters of a fault sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Per-delivery loss probabilities to sweep (each in `[0, 1)`).
    pub loss_rates: Vec<f64>,
    /// Numbers of round-0 crashes to sweep (each `< n`).
    pub crash_counts: Vec<usize>,
    /// Master seed; every cell derives its own plan seed from it.
    pub seed: u64,
    /// Round budget per cell run.
    pub max_rounds: usize,
    /// Retransmission policy for the robust protocols.
    pub retransmit: RetransmitConfig,
    /// Worker threads for the (loss × crashes) grid: every cell is an
    /// independent seeded simulation, so they fan out over
    /// [`anr_par::par_map`]. `0` (the default) means auto
    /// ([`anr_par::default_workers`]); `1` forces the serial order. The
    /// report — and its JSON — is byte-identical whatever the count.
    pub workers: usize,
    /// Engine executing the cell runs; the report is byte-identical
    /// either way.
    pub engine: SweepEngine,
    /// Protocols to sweep (at least one must be enabled).
    pub protocols: SweepProtocols,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            loss_rates: vec![0.0, 0.05, 0.1, 0.2],
            crash_counts: vec![0, 1, 2],
            seed: 42,
            max_rounds: 4000,
            retransmit: RetransmitConfig::default(),
            workers: 0,
            engine: SweepEngine::default(),
            protocols: SweepProtocols::default(),
        }
    }
}

/// One grid cell: survival of one protocol under one fault setting.
///
/// `Eq`-friendly on purpose (loss is stored in permille) so it can ride
/// inside [`ResilienceReport`](crate::ResilienceReport).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SurvivalStats {
    /// Loss probability of this cell, in permille (137 = 13.7%).
    pub loss_permille: u32,
    /// Robots crashed at round 0.
    pub crashes: usize,
    /// Did the protocol terminate within the round budget?
    pub converged: bool,
    /// Do live robots' results match the centralized reference on the
    /// live topology?
    pub correct: bool,
    /// Rounds to quiescence (the round budget if not converged).
    pub rounds: usize,
    /// Messages accepted by the channel (retransmissions included).
    pub sent: usize,
    /// Messages delivered to live robots.
    pub delivered: usize,
    /// Messages dropped by the loss model.
    pub dropped_loss: usize,
    /// Messages dropped at a crashed recipient.
    pub dropped_crash: usize,
    /// `sent` relative to the protocol's zero-fault baseline, permille.
    pub overhead_permille: u32,
}

/// The sweep grid of one protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolGrid {
    /// Protocol name (`"flooding"`, `"hop_field"`).
    pub protocol: String,
    /// Rounds the zero-fault baseline took.
    pub baseline_rounds: usize,
    /// Messages the zero-fault baseline sent.
    pub baseline_sent: usize,
    /// One entry per (loss, crashes) pair, loss-major order.
    pub cells: Vec<SurvivalStats>,
}

/// A complete fault sweep over a deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSweepReport {
    /// Robots in the deployment.
    pub robots: usize,
    /// Communication range used to build the connectivity graph.
    pub range: f64,
    /// Master seed of the sweep.
    pub seed: u64,
    /// The swept loss rates.
    pub loss_rates: Vec<f64>,
    /// The swept crash counts.
    pub crash_counts: Vec<usize>,
    /// One grid per protocol.
    pub protocols: Vec<ProtocolGrid>,
}

/// Splitmix64 step — the same generator the fault plan uses, applied
/// here only to derive per-cell seeds and crash sets.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn cell_seed(master: u64, li: usize, ci: usize) -> u64 {
    let mut s = master ^ ((li as u64) << 32) ^ (ci as u64 + 1);
    splitmix(&mut s)
}

/// Picks `count` distinct robots to crash, deterministically per seed.
fn pick_crashed(n: usize, count: usize, seed: u64) -> Vec<usize> {
    let mut s = seed;
    let mut picked: Vec<usize> = Vec::with_capacity(count);
    while picked.len() < count {
        let r = (splitmix(&mut s) % n as u64) as usize;
        if !picked.contains(&r) {
            picked.push(r);
        }
    }
    picked.sort_unstable();
    picked
}

/// Per-robot component ID over the topology with `crashed` removed;
/// `None` for crashed robots.
fn live_components(adjacency: &[Vec<usize>], crashed: &[bool]) -> Vec<Option<usize>> {
    let n = adjacency.len();
    let mut comp = vec![None; n];
    let mut next_id = 0;
    for start in 0..n {
        if crashed[start] || comp[start].is_some() {
            continue;
        }
        let mut queue = vec![start];
        comp[start] = Some(next_id);
        while let Some(u) = queue.pop() {
            for &v in &adjacency[u] {
                if !crashed[v] && comp[v].is_none() {
                    comp[v] = Some(next_id);
                    queue.push(v);
                }
            }
        }
        next_id += 1;
    }
    comp
}

/// Multi-source BFS hop field over the topology with `crashed` removed.
fn live_hops(adjacency: &[Vec<usize>], crashed: &[bool], sources: &[bool]) -> Vec<Option<usize>> {
    let n = adjacency.len();
    let mut hops = vec![None; n];
    let mut frontier: Vec<usize> = (0..n).filter(|&i| sources[i] && !crashed[i]).collect();
    for &s in &frontier {
        hops[s] = Some(0);
    }
    let mut d = 0;
    while !frontier.is_empty() {
        d += 1;
        let mut next = Vec::new();
        for &u in &frontier {
            for &v in &adjacency[u] {
                if !crashed[v] && hops[v].is_none() {
                    hops[v] = Some(d);
                    next.push(v);
                }
            }
        }
        frontier = next;
    }
    hops
}

fn permille(x: f64) -> u32 {
    (x * 1000.0).round() as u32
}

/// Raw outcome of one cell run before overhead is filled in.
struct CellRun {
    converged: bool,
    correct: bool,
    stats: FaultStats,
}

/// Runs one protocol under one plan, tolerating non-convergence (the
/// stats of a timed-out run are still reported). Both engines follow
/// the same settle-then-drain shape, so their cells are byte-identical.
fn run_cell<N, F, C>(
    nodes: Vec<N>,
    adjacency: &[Vec<usize>],
    plan: FaultPlan,
    max_rounds: usize,
    engine: SweepEngine,
    settled: F,
    check: C,
) -> Result<CellRun, SimError>
where
    N: EventNode,
    F: Fn(&[N]) -> bool,
    C: Fn(&[N]) -> bool,
{
    let (converged, correct, stats) = match engine {
        SweepEngine::Synchronous => {
            let mut sim = FaultySimulator::new(nodes, adjacency.to_vec(), plan)?;
            let converged = match sim.run_until(max_rounds, &settled) {
                Ok(_) => true,
                Err(SimError::NotQuiescent { .. }) => false,
                Err(e) => return Err(e),
            };
            if converged {
                // Drain the in-flight tail (stray acks, duplicates) so
                // delivery accounting is complete.
                match sim.run_until_quiet(max_rounds) {
                    Ok(_) | Err(SimError::NotQuiescent { .. }) => {}
                    Err(e) => return Err(e),
                }
            }
            let correct = converged && check(sim.nodes());
            (converged, correct, sim.stats())
        }
        SweepEngine::Event => {
            let topology = ExplicitTopology::new(adjacency.to_vec())?;
            let mut sim = EventSim::new(nodes, topology, plan)?;
            let converged = match sim.run_until(max_rounds, &settled) {
                Ok(_) => true,
                Err(SimError::NotQuiescent { .. }) => false,
                Err(e) => return Err(e),
            };
            if converged {
                match sim.run_until_quiet(max_rounds) {
                    Ok(_) | Err(SimError::NotQuiescent { .. }) => {}
                    Err(e) => return Err(e),
                }
            }
            let correct = converged && check(sim.nodes());
            (converged, correct, sim.stats())
        }
    };
    Ok(CellRun {
        converged,
        correct,
        stats,
    })
}

fn flood_cell(
    adjacency: &[Vec<usize>],
    values: &[f64],
    plan: FaultPlan,
    crashed: &[bool],
    cfg: RetransmitConfig,
    max_rounds: usize,
    engine: SweepEngine,
) -> Result<CellRun, SimError> {
    let n = values.len();
    let comp = live_components(adjacency, crashed);
    let mut comp_sum: Vec<f64> = Vec::new();
    for i in 0..n {
        if let Some(c) = comp[i] {
            if c >= comp_sum.len() {
                comp_sum.resize(c + 1, 0.0);
            }
            comp_sum[c] += values[i];
        }
    }
    let expected: Vec<Option<f64>> = comp.iter().map(|c| c.map(|c| comp_sum[c])).collect();
    let nodes: Vec<RobustFloodNode> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| RobustFloodNode::new(i, v, n, adjacency[i].clone(), cfg))
        .collect();
    run_cell(
        nodes,
        adjacency,
        plan,
        max_rounds,
        engine,
        |ns| ns.iter().all(RobustFloodNode::is_settled),
        move |ns| {
            ns.iter().enumerate().all(|(i, nd)| match expected[i] {
                Some(want) => (nd.sum() - want).abs() < 1e-9,
                None => true, // crashed: no claim
            })
        },
    )
}

fn hop_field_cell(
    adjacency: &[Vec<usize>],
    sources: &[bool],
    plan: FaultPlan,
    crashed: &[bool],
    cfg: RetransmitConfig,
    max_rounds: usize,
    engine: SweepEngine,
) -> Result<CellRun, SimError> {
    let expected = live_hops(adjacency, crashed, sources);
    let crashed_owned = crashed.to_vec();
    let nodes: Vec<RobustHopFieldNode> = sources
        .iter()
        .enumerate()
        .map(|(i, &is_source)| RobustHopFieldNode::new(is_source, adjacency[i].clone(), cfg))
        .collect();
    run_cell(
        nodes,
        adjacency,
        plan,
        max_rounds,
        engine,
        |ns| ns.iter().all(RobustHopFieldNode::is_settled),
        move |ns| {
            ns.iter()
                .enumerate()
                .all(|(i, nd)| crashed_owned[i] || nd.hops == expected[i])
        },
    )
}

/// Runs the full (loss × crashes) sweep over a deployment's
/// connectivity graph.
///
/// Protocols swept: ack/retransmit flooding (values `1..=n`) and the
/// robust hop field (sources: first and last robot). Crashes happen at
/// round 0, so correctness is judged against the centralized reference
/// on the live topology.
///
/// # Errors
///
/// [`SimError::InvalidFaultPlan`] when a loss rate is outside `[0, 1)`
/// or a crash count reaches the robot count; simulator errors otherwise.
///
/// # Panics
///
/// Panics when `positions.len() < 2` or `range <= 0`.
pub fn run_fault_sweep(
    positions: &[Point],
    range: f64,
    config: &SweepConfig,
) -> Result<FaultSweepReport, SimError> {
    run_fault_sweep_traced(positions, range, config, &Tracer::disabled())
}

/// [`run_fault_sweep`] with structured tracing: the sweep runs inside a
/// `fault_sweep` span, and every finished grid cell emits a
/// `sweep_cell` summary event (protocol, loss, crashes, convergence,
/// rounds, messages). Cell events are emitted in the deterministic
/// loss-major fold order — **not** from the worker threads — so the
/// trace is byte-identical for any worker count. Tracing is observation
/// only: the report matches [`run_fault_sweep`] exactly.
///
/// # Errors
///
/// Same as [`run_fault_sweep`].
///
/// # Panics
///
/// Same as [`run_fault_sweep`].
pub fn run_fault_sweep_traced(
    positions: &[Point],
    range: f64,
    config: &SweepConfig,
    tracer: &Tracer,
) -> Result<FaultSweepReport, SimError> {
    let n = positions.len();
    assert!(n >= 2, "a sweep needs at least 2 robots");
    for &loss in &config.loss_rates {
        if !(0.0..1.0).contains(&loss) {
            return Err(SimError::InvalidFaultPlan {
                reason: format!("loss rate {loss} outside [0, 1)"),
            });
        }
    }
    for &c in &config.crash_counts {
        if c >= n {
            return Err(SimError::InvalidFaultPlan {
                reason: format!("cannot crash {c} of {n} robots"),
            });
        }
    }
    if !config.protocols.flooding && !config.protocols.hop_field {
        return Err(SimError::InvalidFaultPlan {
            reason: "no protocols selected for the sweep".to_string(),
        });
    }
    let _sweep_span = tracer.span_with(
        "fault_sweep",
        vec![
            ("robots", TraceValue::U64(n as u64)),
            (
                "cells",
                TraceValue::U64((config.loss_rates.len() * config.crash_counts.len()) as u64),
            ),
            ("seed", TraceValue::U64(config.seed)),
        ],
    );
    let graph = UnitDiskGraph::new(positions, range);
    let adjacency = graph.adjacency().to_vec();
    let values: Vec<f64> = (1..=n).map(|i| i as f64).collect();
    let sources: Vec<bool> = (0..n).map(|i| i == 0 || i == n - 1).collect();
    let no_crash = vec![false; n];
    let cfg = config.retransmit;

    // Zero-fault baselines (overhead denominators), one per enabled
    // protocol, in the fixed flooding-then-hop-field order.
    let mut grids = Vec::new();
    if config.protocols.flooding {
        let flood_base = flood_cell(
            &adjacency,
            &values,
            FaultPlan::reliable(config.seed),
            &no_crash,
            cfg,
            config.max_rounds,
            config.engine,
        )?;
        grids.push(ProtocolGrid {
            protocol: "flooding".to_string(),
            baseline_rounds: flood_base.stats.rounds,
            baseline_sent: flood_base.stats.sent,
            cells: Vec::new(),
        });
    }
    if config.protocols.hop_field {
        let hop_base = hop_field_cell(
            &adjacency,
            &sources,
            FaultPlan::reliable(config.seed),
            &no_crash,
            cfg,
            config.max_rounds,
            config.engine,
        )?;
        grids.push(ProtocolGrid {
            protocol: "hop_field".to_string(),
            baseline_rounds: hop_base.stats.rounds,
            baseline_sent: hop_base.stats.sent,
            cells: Vec::new(),
        });
    }

    // Every cell is an independent seeded simulation: fan them out and
    // fold the results back in loss-major order, so the report (and its
    // JSON) is byte-identical to the serial sweep for any worker count.
    let coords: Vec<(usize, usize)> = (0..config.loss_rates.len())
        .flat_map(|li| (0..config.crash_counts.len()).map(move |ci| (li, ci)))
        .collect();
    let cell_results = anr_par::par_map(&coords, config.workers, |&(li, ci)| {
        let loss = config.loss_rates[li];
        let crash_count = config.crash_counts[ci];
        let seed = cell_seed(config.seed, li, ci);
        let crashed_ids = pick_crashed(n, crash_count, seed ^ 0xC2A5);
        let mut crashed = vec![false; n];
        let mut plan = FaultPlan::reliable(seed);
        if loss > 0.0 {
            plan = plan.with_loss(loss);
        }
        for &r in &crashed_ids {
            crashed[r] = true;
            plan = plan.with_crash(0, r);
        }
        let mut runs = Vec::with_capacity(2);
        if config.protocols.flooding {
            runs.push(flood_cell(
                &adjacency,
                &values,
                plan.clone(),
                &crashed,
                cfg,
                config.max_rounds,
                config.engine,
            )?);
        }
        if config.protocols.hop_field {
            runs.push(hop_field_cell(
                &adjacency,
                &sources,
                plan,
                &crashed,
                cfg,
                config.max_rounds,
                config.engine,
            )?);
        }
        Ok(runs)
    });

    for (&(li, ci), runs) in coords.iter().zip(cell_results) {
        let runs: Vec<CellRun> = runs?;
        let loss = config.loss_rates[li];
        let crash_count = config.crash_counts[ci];
        for (grid, run) in grids.iter_mut().zip(runs) {
            let overhead = if grid.baseline_sent == 0 {
                1000
            } else {
                (run.stats.sent as u64 * 1000 / grid.baseline_sent as u64) as u32
            };
            if tracer.is_enabled() {
                tracer.event(
                    "sweep_cell",
                    &[
                        ("protocol", TraceValue::Str(grid.protocol.clone())),
                        ("loss_permille", TraceValue::U64(permille(loss) as u64)),
                        ("crashes", TraceValue::U64(crash_count as u64)),
                        ("converged", TraceValue::Bool(run.converged)),
                        ("correct", TraceValue::Bool(run.correct)),
                        ("rounds", TraceValue::U64(run.stats.rounds as u64)),
                        ("sent", TraceValue::U64(run.stats.sent as u64)),
                        ("overhead_permille", TraceValue::U64(overhead as u64)),
                    ],
                );
            }
            grid.cells.push(SurvivalStats {
                loss_permille: permille(loss),
                crashes: crash_count,
                converged: run.converged,
                correct: run.correct,
                rounds: run.stats.rounds,
                sent: run.stats.sent,
                delivered: run.stats.delivered,
                dropped_loss: run.stats.dropped_loss,
                dropped_crash: run.stats.dropped_crash,
                overhead_permille: overhead,
            });
        }
    }

    Ok(FaultSweepReport {
        robots: n,
        range,
        seed: config.seed,
        loss_rates: config.loss_rates.clone(),
        crash_counts: config.crash_counts.clone(),
        protocols: grids,
    })
}

fn json_f64(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{:.1}", x)
    } else {
        format!("{x}")
    }
}

impl FaultSweepReport {
    /// Serializes the report as a self-contained JSON document
    /// (deterministic: same report, same bytes).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"robots\": {},\n", self.robots));
        s.push_str(&format!("  \"range\": {},\n", json_f64(self.range)));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        let losses: Vec<String> = self.loss_rates.iter().map(|&l| json_f64(l)).collect();
        s.push_str(&format!("  \"loss_rates\": [{}],\n", losses.join(", ")));
        let crashes: Vec<String> = self.crash_counts.iter().map(|c| c.to_string()).collect();
        s.push_str(&format!("  \"crash_counts\": [{}],\n", crashes.join(", ")));
        s.push_str("  \"protocols\": [\n");
        for (pi, grid) in self.protocols.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"protocol\": \"{}\",\n", grid.protocol));
            s.push_str(&format!(
                "      \"baseline\": {{\"rounds\": {}, \"sent\": {}}},\n",
                grid.baseline_rounds, grid.baseline_sent
            ));
            s.push_str("      \"cells\": [\n");
            for (i, c) in grid.cells.iter().enumerate() {
                s.push_str(&format!(
                    "        {{\"loss\": {}, \"crashes\": {}, \"converged\": {}, \
                     \"correct\": {}, \"rounds\": {}, \"sent\": {}, \"delivered\": {}, \
                     \"dropped_loss\": {}, \"dropped_crash\": {}, \"overhead_permille\": {}}}{}\n",
                    json_f64(c.loss_permille as f64 / 1000.0),
                    c.crashes,
                    c.converged,
                    c.correct,
                    c.rounds,
                    c.sent,
                    c.delivered,
                    c.dropped_loss,
                    c.dropped_crash,
                    c.overhead_permille,
                    if i + 1 < grid.cells.len() { "," } else { "" },
                ));
            }
            s.push_str("      ]\n");
            s.push_str(&format!(
                "    }}{}\n",
                if pi + 1 < self.protocols.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anr_distsim::Simulator;

    fn lattice(rows: usize, cols: usize) -> Vec<Point> {
        let mut pts = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let x = c as f64 * 55.0 + if r % 2 == 1 { 27.5 } else { 0.0 };
                pts.push(Point::new(x, r as f64 * 48.0));
            }
        }
        pts
    }

    fn small_config() -> SweepConfig {
        SweepConfig {
            loss_rates: vec![0.0, 0.15],
            crash_counts: vec![0, 1],
            seed: 7,
            max_rounds: 3000,
            ..SweepConfig::default()
        }
    }

    #[test]
    fn event_engine_report_is_byte_identical_to_sync() {
        let pts = lattice(3, 4);
        let sync = run_fault_sweep(&pts, 80.0, &small_config()).unwrap();
        let event = run_fault_sweep(
            &pts,
            80.0,
            &SweepConfig {
                engine: SweepEngine::Event,
                ..small_config()
            },
        )
        .unwrap();
        assert_eq!(sync, event, "engines must agree cell by cell");
        assert_eq!(sync.to_json(), event.to_json());
    }

    #[test]
    fn protocol_selection_prunes_grids() {
        let pts = lattice(3, 4);
        let both = run_fault_sweep(&pts, 80.0, &small_config()).unwrap();
        let hop_only = run_fault_sweep(
            &pts,
            80.0,
            &SweepConfig {
                protocols: SweepProtocols {
                    flooding: false,
                    hop_field: true,
                },
                ..small_config()
            },
        )
        .unwrap();
        assert_eq!(hop_only.protocols.len(), 1);
        assert_eq!(hop_only.protocols[0].protocol, "hop_field");
        // Deselecting flooding must not perturb the hop-field grid:
        // cells are seeded per coordinate, not per protocol order.
        assert_eq!(hop_only.protocols[0], both.protocols[1]);
        let none = run_fault_sweep(
            &pts,
            80.0,
            &SweepConfig {
                protocols: SweepProtocols {
                    flooding: false,
                    hop_field: false,
                },
                ..small_config()
            },
        );
        assert!(matches!(none, Err(SimError::InvalidFaultPlan { .. })));
    }

    #[test]
    fn parallel_sweep_is_byte_identical_to_serial() {
        let pts = lattice(3, 4);
        let serial = run_fault_sweep(
            &pts,
            80.0,
            &SweepConfig {
                workers: 1,
                ..small_config()
            },
        )
        .unwrap();
        let parallel = run_fault_sweep(
            &pts,
            80.0,
            &SweepConfig {
                workers: 4,
                ..small_config()
            },
        )
        .unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial.to_json(), parallel.to_json());
    }

    #[test]
    fn sweep_is_deterministic() {
        let pts = lattice(3, 4);
        let a = run_fault_sweep(&pts, 80.0, &small_config()).unwrap();
        let b = run_fault_sweep(&pts, 80.0, &small_config()).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn zero_fault_cell_matches_reliable_simulator_exactly() {
        // The acceptance criterion: the (loss 0, crashes 0) cell must
        // report the same rounds and messages as the robust protocol run
        // on the *reliable* Simulator.
        let pts = lattice(3, 4);
        let n = pts.len();
        let report = run_fault_sweep(&pts, 80.0, &small_config()).unwrap();
        let graph = UnitDiskGraph::new(&pts, 80.0);
        let values: Vec<f64> = (1..=n).map(|i| i as f64).collect();
        let nodes: Vec<RobustFloodNode> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                RobustFloodNode::new(
                    i,
                    v,
                    n,
                    graph.adjacency()[i].clone(),
                    RetransmitConfig::default(),
                )
            })
            .collect();
        let mut sim = Simulator::new(nodes, graph.adjacency().to_vec()).unwrap();
        let stats = sim.run_until_quiet(3000).unwrap();

        let flood = &report.protocols[0];
        assert_eq!(flood.protocol, "flooding");
        let cell = flood
            .cells
            .iter()
            .find(|c| c.loss_permille == 0 && c.crashes == 0)
            .expect("zero-fault cell present");
        assert_eq!(cell.rounds, stats.rounds, "rounds match reliable simulator");
        assert_eq!(
            cell.sent, stats.messages,
            "messages match reliable simulator"
        );
        assert_eq!(cell.dropped_loss, 0);
        assert_eq!(
            cell.overhead_permille, 1000,
            "baseline is its own overhead unit"
        );
        assert!(cell.converged && cell.correct);
    }

    #[test]
    fn lossy_cells_converge_correctly_with_overhead() {
        let pts = lattice(3, 4);
        let report = run_fault_sweep(&pts, 80.0, &small_config()).unwrap();
        for grid in &report.protocols {
            let lossy = grid
                .cells
                .iter()
                .find(|c| c.loss_permille == 150 && c.crashes == 0)
                .unwrap();
            assert!(
                lossy.converged,
                "{}: converged under 15% loss",
                grid.protocol
            );
            assert!(lossy.correct, "{}: correct under 15% loss", grid.protocol);
            assert!(lossy.dropped_loss > 0);
            assert!(
                lossy.overhead_permille > 1000,
                "{}: retransmissions cost messages",
                grid.protocol
            );
        }
    }

    #[test]
    fn crash_cells_judged_against_live_topology() {
        let pts = lattice(3, 4);
        let report = run_fault_sweep(&pts, 80.0, &small_config()).unwrap();
        for grid in &report.protocols {
            let crashed = grid
                .cells
                .iter()
                .find(|c| c.loss_permille == 0 && c.crashes == 1)
                .unwrap();
            assert!(crashed.converged, "{}", grid.protocol);
            assert!(
                crashed.correct,
                "{}: live robots match the live-topology reference",
                grid.protocol
            );
        }
    }

    #[test]
    fn json_has_expected_shape() {
        let pts = lattice(2, 3);
        let report = run_fault_sweep(&pts, 80.0, &small_config()).unwrap();
        let json = report.to_json();
        for key in [
            "\"robots\": 6",
            "\"range\": 80.0",
            "\"loss_rates\": [0.0, 0.15]",
            "\"crash_counts\": [0, 1]",
            "\"protocol\": \"flooding\"",
            "\"protocol\": \"hop_field\"",
            "\"overhead_permille\"",
            "\"baseline\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        // Balanced braces/brackets — cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn traced_sweep_is_observation_only_and_worker_independent() {
        let pts = lattice(3, 4);
        let plain = run_fault_sweep(&pts, 80.0, &small_config()).unwrap();
        let traced_run = |workers: usize| {
            let tracer = Tracer::ring(65_536);
            let report = run_fault_sweep_traced(
                &pts,
                80.0,
                &SweepConfig {
                    workers,
                    ..small_config()
                },
                &tracer,
            )
            .unwrap();
            let lines: Vec<String> = tracer.events().iter().map(anr_trace::jsonl_line).collect();
            (report, lines)
        };
        let (r1, l1) = traced_run(1);
        let (r4, l4) = traced_run(4);
        assert_eq!(plain, r1, "tracing must not perturb the sweep");
        assert_eq!(r1, r4);
        assert_eq!(l1, l4, "trace byte-identical for any worker count");
        // One summary event per (protocol × loss × crash) cell.
        let cells = l1.iter().filter(|l| l.contains("sweep_cell")).count();
        assert_eq!(cells, 2 * 2 * 2);
    }

    #[test]
    fn invalid_configs_rejected() {
        let pts = lattice(2, 2);
        let mut cfg = small_config();
        cfg.loss_rates = vec![1.5];
        assert!(matches!(
            run_fault_sweep(&pts, 80.0, &cfg),
            Err(SimError::InvalidFaultPlan { .. })
        ));
        let mut cfg = small_config();
        cfg.crash_counts = vec![4];
        assert!(matches!(
            run_fault_sweep(&pts, 80.0, &cfg),
            Err(SimError::InvalidFaultPlan { .. })
        ));
    }
}
