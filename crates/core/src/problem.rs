//! Problem statement and configuration for one marching instance.

use crate::MarchError;
use anr_coverage::{deploy_exactly, run_lloyd, Density, GridPartition, LloydConfig};
use anr_geom::{Point, PolygonWithHoles};
use anr_harmonic::{HarmonicConfig, RotationSearch};
use anr_netgraph::UnitDiskGraph;

/// One instance of the optimal marching problem (Definition 6): a
/// deployed swarm in the current FoI `M1` and a target FoI `M2`.
#[derive(Debug, Clone)]
pub struct MarchProblem {
    /// The current field of interest.
    pub m1: PolygonWithHoles,
    /// The target field of interest.
    pub m2: PolygonWithHoles,
    /// Robot positions in `M1`.
    pub positions: Vec<Point>,
    /// Communication range `r_c` (the paper assumes `r_c ≥ √3·r_s`).
    pub range: f64,
}

impl MarchProblem {
    /// Creates a problem from explicit robot positions.
    ///
    /// # Errors
    ///
    /// * [`MarchError::TooFewRobots`] for fewer than 3 robots.
    /// * [`MarchError::DisconnectedDeployment`] when the initial
    ///   connectivity graph is not connected.
    pub fn new(
        m1: PolygonWithHoles,
        m2: PolygonWithHoles,
        positions: Vec<Point>,
        range: f64,
    ) -> Result<Self, MarchError> {
        if positions.len() < 3 {
            return Err(MarchError::TooFewRobots {
                got: positions.len(),
            });
        }
        assert!(range > 0.0, "communication range must be positive");
        let graph = UnitDiskGraph::new(&positions, range);
        let components = graph.connected_components().len();
        if components != 1 {
            return Err(MarchError::DisconnectedDeployment { components });
        }
        Ok(MarchProblem {
            m1,
            m2,
            positions,
            range,
        })
    }

    /// Creates a problem with `n` robots deployed on a triangular lattice
    /// in `M1` and refined to near-optimal coverage positions — the
    /// paper's starting state ("they complete a task at current FoI").
    ///
    /// # Errors
    ///
    /// Same as [`MarchProblem::new`], plus
    /// [`MarchError::TooFewRobots`] when the lattice cannot fit `n`.
    pub fn with_lattice_deployment(
        m1: PolygonWithHoles,
        m2: PolygonWithHoles,
        n: usize,
        range: f64,
    ) -> Result<Self, MarchError> {
        let positions =
            optimal_coverage_positions(&m1, n).ok_or(MarchError::TooFewRobots { got: 0 })?;
        MarchProblem::new(m1, m2, positions, range)
    }

    /// Number of robots.
    #[inline]
    pub fn num_robots(&self) -> usize {
        self.positions.len()
    }

    /// The sensing range implied by `r_c = √3·r_s`.
    #[inline]
    pub fn sensing_range(&self) -> f64 {
        self.range / 3f64.sqrt()
    }

    /// All hole polygons of both FoIs — the forbidden regions robot
    /// paths must avoid.
    pub fn obstacles(&self) -> Vec<anr_geom::Polygon> {
        self.m1
            .holes()
            .iter()
            .chain(self.m2.holes().iter())
            .cloned()
            .collect()
    }
}

/// Computes `n` optimal coverage positions in `region`: a triangular
/// lattice refined by (plain) Lloyd iteration — the centroidal-Voronoi
/// layout the paper's comparison methods assume precomputed (Sec. IV).
///
/// Returns `None` when `n == 0` or the region cannot fit `n` robots.
pub fn optimal_coverage_positions(region: &PolygonWithHoles, n: usize) -> Option<Vec<Point>> {
    let seed = deploy_exactly(region, n)?;
    // Partition resolution: a few samples per robot cell.
    let spacing = (region.area() / n as f64).sqrt() / 4.0;
    let partition = GridPartition::new(region, spacing);
    let result = run_lloyd(
        &seed,
        &partition,
        &Density::Uniform,
        &LloydConfig {
            tolerance: spacing * 0.1,
            max_iterations: 60,
            ..Default::default()
        },
    );
    Some(result.sites)
}

/// Tunable configuration of the marching pipeline.
#[derive(Debug, Clone)]
pub struct MarchConfig {
    /// Grid spacing for meshing `M2`. `None` (default) derives it from
    /// the robot density: ~0.6× the robot lattice spacing.
    pub mesh_spacing: Option<f64>,
    /// Harmonic-map solver settings.
    pub harmonic: HarmonicConfig,
    /// Rotation-search settings (paper: depth 4).
    pub rotation: RotationSearch,
    /// Number of sample intervals along the transition for `e_ij(t)` and
    /// connectivity checks. Default 50.
    pub time_samples: usize,
    /// Lloyd settings for the final coverage adjustment.
    pub lloyd: LloydConfig,
    /// Density for the final coverage adjustment (Sec. IV-E). Default
    /// uniform.
    pub density: Density,
    /// Run the post-transition Lloyd refinement (default true). Disable
    /// to study the raw harmonic-map placement.
    pub refine_coverage: bool,
}

impl Default for MarchConfig {
    fn default() -> Self {
        MarchConfig {
            mesh_spacing: None,
            harmonic: HarmonicConfig::default(),
            rotation: RotationSearch::default(),
            time_samples: 50,
            lloyd: LloydConfig {
                tolerance: 1.0,
                max_iterations: 30,
                ..Default::default()
            },
            density: Density::Uniform,
            refine_coverage: true,
        }
    }
}

impl MarchConfig {
    /// The `M2` mesh spacing to use for `n` robots in a region of the
    /// given area: explicit override or 0.6× the robot lattice pitch.
    pub fn resolve_mesh_spacing(&self, area: f64, n: usize) -> f64 {
        self.mesh_spacing.unwrap_or_else(|| {
            let robot_pitch = (area / n as f64 * 2.0 / 3f64.sqrt()).sqrt();
            0.6 * robot_pitch
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anr_geom::Polygon;

    fn square(side: f64, origin: Point) -> PolygonWithHoles {
        PolygonWithHoles::without_holes(Polygon::rectangle(origin, side, side))
    }

    #[test]
    fn rejects_too_few_robots() {
        let m1 = square(100.0, Point::ORIGIN);
        let m2 = square(100.0, Point::new(500.0, 0.0));
        assert!(matches!(
            MarchProblem::new(m1, m2, vec![Point::ORIGIN], 80.0),
            Err(MarchError::TooFewRobots { got: 1 })
        ));
    }

    #[test]
    fn rejects_disconnected_deployment() {
        let m1 = square(100.0, Point::ORIGIN);
        let m2 = square(100.0, Point::new(500.0, 0.0));
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(50.0, 0.0),
            Point::new(2000.0, 0.0),
        ];
        assert!(matches!(
            MarchProblem::new(m1, m2, positions, 80.0),
            Err(MarchError::DisconnectedDeployment { components: 2 })
        ));
    }

    #[test]
    fn lattice_deployment_is_connected_and_exact() {
        let m1 = square(500.0, Point::ORIGIN);
        let m2 = square(500.0, Point::new(2000.0, 0.0));
        let p = MarchProblem::with_lattice_deployment(m1, m2, 64, 80.0).unwrap();
        assert_eq!(p.num_robots(), 64);
        assert!(UnitDiskGraph::new(&p.positions, 80.0).is_connected());
        // All robots inside M1.
        for q in &p.positions {
            assert!(p.m1.contains(*q));
        }
    }

    #[test]
    fn sensing_range_ratio() {
        let m1 = square(500.0, Point::ORIGIN);
        let m2 = square(500.0, Point::new(2000.0, 0.0));
        let p = MarchProblem::with_lattice_deployment(m1, m2, 64, 80.0).unwrap();
        assert!((p.sensing_range() * 3f64.sqrt() - 80.0).abs() < 1e-12);
    }

    #[test]
    fn optimal_positions_spread_out() {
        let region = square(400.0, Point::ORIGIN);
        let pts = optimal_coverage_positions(&region, 25).unwrap();
        assert_eq!(pts.len(), 25);
        let min_d = anr_coverage::min_pairwise_distance(&pts).unwrap();
        // 25 robots in 400×400: lattice pitch ~86 m; CVT should keep
        // them well separated.
        assert!(min_d > 40.0, "min distance {min_d}");
    }

    #[test]
    fn obstacles_collects_both_fois() {
        let outer1 = Polygon::rectangle(Point::ORIGIN, 200.0, 200.0);
        let hole1 = Polygon::rectangle(Point::new(80.0, 80.0), 30.0, 30.0);
        let m1 = PolygonWithHoles::new(outer1, vec![hole1]).unwrap();
        let outer2 = Polygon::rectangle(Point::new(900.0, 0.0), 200.0, 200.0);
        let hole2 = Polygon::rectangle(Point::new(980.0, 80.0), 30.0, 30.0);
        let m2 = PolygonWithHoles::new(outer2, vec![hole2]).unwrap();
        let positions = vec![
            Point::new(10.0, 10.0),
            Point::new(60.0, 10.0),
            Point::new(35.0, 50.0),
        ];
        let p = MarchProblem::new(m1, m2, positions, 80.0).unwrap();
        assert_eq!(p.obstacles().len(), 2);
    }

    #[test]
    fn mesh_spacing_resolution() {
        let cfg = MarchConfig::default();
        let s = cfg.resolve_mesh_spacing(308_261.0, 144);
        // Robot pitch ≈ 49.7 m → spacing ≈ 29.8 m.
        assert!(s > 25.0 && s < 35.0, "spacing {s}");
        let cfg = MarchConfig {
            mesh_spacing: Some(10.0),
            ..Default::default()
        };
        assert_eq!(cfg.resolve_mesh_spacing(308_261.0, 144), 10.0);
    }
}
