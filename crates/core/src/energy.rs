//! Energy accounting for a transition.
//!
//! The paper motivates link preservation with energy: breaking a link
//! forces the pair to re-establish (re-pair, re-key) a secure wireless
//! session — "the extensive change of local connectivity may result in
//! significant overhead and delay for re-pairing the wireless links"
//! (Sec. I), and preserving links "saves a lot of energy on updating new
//! connections" (Sec. IV-A). This module turns those qualitative claims
//! into a simple, auditable cost model so methods can be compared on a
//! single energy number.

use crate::TransitionMetrics;
use std::fmt;

/// A linear energy model for one transition.
///
/// Total energy =
/// `motion_cost_per_meter · D`
/// `+ link_setup_cost · (broken links + new links)`
/// `+ idle_cost_per_robot · n` (fixed per-robot overhead, e.g. keeping
/// radios on for the duration).
///
/// Defaults follow common small-UGV ballpark figures: 2 J per metre of
/// travel, 50 J per wireless (re-)pairing handshake, no idle term. The
/// absolute numbers matter less than the ratio — the model is for
/// comparing methods under the *same* assumptions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Joules per metre of robot travel.
    pub motion_cost_per_meter: f64,
    /// Joules per link (re-)establishment handshake.
    pub link_setup_cost: f64,
    /// Fixed joules per robot for the whole transition.
    pub idle_cost_per_robot: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            motion_cost_per_meter: 2.0,
            link_setup_cost: 50.0,
            idle_cost_per_robot: 0.0,
        }
    }
}

/// Energy breakdown of one transition under an [`EnergyModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Energy spent moving (`motion_cost_per_meter · D`).
    pub motion: f64,
    /// Energy spent re-pairing links (broken + new, each one handshake).
    pub link_maintenance: f64,
    /// Fixed idle overhead.
    pub idle: f64,
}

impl EnergyReport {
    /// Total energy in joules.
    pub fn total(&self) -> f64 {
        self.motion + self.link_maintenance + self.idle
    }
}

impl fmt::Display for EnergyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0} J (motion {:.0} J, link maintenance {:.0} J, idle {:.0} J)",
            self.total(),
            self.motion,
            self.link_maintenance,
            self.idle
        )
    }
}

impl EnergyModel {
    /// Evaluates the model on a transition's metrics for `n` robots.
    ///
    /// Broken links = `initial_links − preserved_links`; each broken
    /// link and each new link costs one handshake (the broken pair tears
    /// down state, the new pair runs the full pairing).
    pub fn evaluate(&self, metrics: &TransitionMetrics, robots: usize) -> EnergyReport {
        let broken = metrics.initial_links - metrics.preserved_links;
        EnergyReport {
            motion: self.motion_cost_per_meter * metrics.total_distance,
            link_maintenance: self.link_setup_cost * (broken + metrics.new_links) as f64,
            idle: self.idle_cost_per_robot * robots as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(d: f64, initial: usize, preserved: usize, new_links: usize) -> TransitionMetrics {
        TransitionMetrics {
            total_distance: d,
            stable_link_ratio: preserved as f64 / initial.max(1) as f64,
            global_connectivity: 1,
            preserved_links: preserved,
            initial_links: initial,
            new_links,
            samples: 2,
            audit_pieces: 1,
            audit_checks: 1,
        }
    }

    #[test]
    fn default_model_costs() {
        let m = metrics(1000.0, 100, 90, 15);
        let report = EnergyModel::default().evaluate(&m, 50);
        assert_eq!(report.motion, 2000.0);
        assert_eq!(report.link_maintenance, 50.0 * 25.0); // 10 broken + 15 new
        assert_eq!(report.idle, 0.0);
        assert_eq!(report.total(), 3250.0);
    }

    #[test]
    fn preserving_links_saves_energy() {
        // Same distance, different preservation: the high-L run is
        // cheaper — the paper's energy argument in one assert.
        let model = EnergyModel::default();
        let high_l = model.evaluate(&metrics(10_000.0, 400, 390, 20), 144);
        let low_l = model.evaluate(&metrics(10_000.0, 400, 100, 320), 144);
        assert!(high_l.total() < low_l.total());
    }

    #[test]
    fn crossover_depends_on_model() {
        // A slightly longer path that preserves everything beats a
        // shorter path that breaks the network — until motion is made
        // expensive enough.
        let cheap_motion = EnergyModel {
            motion_cost_per_meter: 1.0,
            link_setup_cost: 100.0,
            idle_cost_per_robot: 0.0,
        };
        let long_safe = metrics(11_000.0, 400, 400, 0);
        let short_breaky = metrics(10_000.0, 400, 200, 250);
        assert!(
            cheap_motion.evaluate(&long_safe, 144).total()
                < cheap_motion.evaluate(&short_breaky, 144).total()
        );

        let expensive_motion = EnergyModel {
            motion_cost_per_meter: 100.0,
            link_setup_cost: 1.0,
            idle_cost_per_robot: 0.0,
        };
        assert!(
            expensive_motion.evaluate(&long_safe, 144).total()
                > expensive_motion.evaluate(&short_breaky, 144).total()
        );
    }

    #[test]
    fn idle_term_scales_with_robots() {
        let model = EnergyModel {
            idle_cost_per_robot: 10.0,
            ..Default::default()
        };
        let m = metrics(0.0, 0, 0, 0);
        assert_eq!(model.evaluate(&m, 10).idle, 100.0);
        assert_eq!(model.evaluate(&m, 144).idle, 1440.0);
    }

    #[test]
    fn display_nonempty() {
        let r = EnergyModel::default().evaluate(&metrics(1.0, 1, 1, 0), 3);
        assert!(!r.to_string().is_empty());
    }
}
