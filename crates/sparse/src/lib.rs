//! # anr-sparse — just enough sparse linear algebra for harmonic maps
//!
//! The discrete harmonic map pins boundary vertices and asks every
//! interior vertex to be the weighted average of its neighbours. That
//! fixed point is the solution of a sparse linear system: the interior
//! sub-block of the graph Laplacian against a boundary-induced
//! right-hand side. The seed solved it by Gauss–Seidel sweeps — O(n)
//! iterations of O(nnz) work on grid-like meshes. This crate provides
//! the tools to solve the same system directly:
//!
//! * [`CsrMatrix`] — compressed sparse row storage with a cached
//!   diagonal;
//! * [`pcg_jacobi`] — conjugate gradient with a Jacobi (diagonal)
//!   preconditioner, which converges in O(√n)-ish iterations on these
//!   Laplacians.
//!
//! Convergence is declared on the **diagonally scaled residual**
//! `max_i |r_i| / a_ii`: for an averaging system this is exactly how far
//! a Jacobi sweep would still move vertex `i`, i.e. the same units as
//! the Gauss–Seidel "largest per-iteration displacement" stop rule it
//! replaces, so callers can reuse their tolerance unchanged.
//!
//! CG requires the matrix to be **symmetric positive definite**. The
//! interior Laplacian sub-block with symmetric positive edge weights is
//! SPD whenever every interior vertex has a path to the pinned boundary
//! (an irreducibly diagonally dominant M-matrix) — which the harmonic
//! solver checks before assembling the system.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

/// A square sparse matrix in compressed sparse row form.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
    /// `a_ii` per row (0.0 where the diagonal is absent).
    diag: Vec<f64>,
}

impl CsrMatrix {
    /// Builds an `n × n` matrix from per-row `(column, value)` lists.
    ///
    /// Entries in a row are coalesced (duplicate columns summed) and
    /// sorted by column; explicit zeros are kept.
    ///
    /// # Panics
    ///
    /// Panics when `rows.len() != n` or a column index is out of range.
    #[must_use]
    pub fn from_rows(n: usize, rows: &[Vec<(usize, f64)>]) -> CsrMatrix {
        assert_eq!(rows.len(), n, "one entry list per row");
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        let mut diag = vec![0.0; n];
        row_ptr.push(0);
        let mut sorted: Vec<(usize, f64)> = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            sorted.clear();
            sorted.extend_from_slice(row);
            sorted.sort_unstable_by_key(|&(j, _)| j);
            let mut k = 0;
            while k < sorted.len() {
                let (j, mut v) = sorted[k];
                assert!(j < n, "column {j} out of range for an {n}×{n} matrix");
                k += 1;
                while k < sorted.len() && sorted[k].0 == j {
                    v += sorted[k].1;
                    k += 1;
                }
                if j == i {
                    diag[i] = v;
                }
                col_idx.push(j);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            n,
            row_ptr,
            col_idx,
            values,
            diag,
        }
    }

    /// Matrix dimension.
    #[inline]
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored entries.
    #[inline]
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The diagonal (0.0 where no diagonal entry is stored).
    #[inline]
    #[must_use]
    pub fn diagonal(&self) -> &[f64] {
        &self.diag
    }

    /// `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics when `x` or `y` length differs from [`CsrMatrix::n`].
    pub fn mul_vec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *yi = acc;
        }
    }

    /// Applies `A` to two vectors stored interleaved
    /// (`xy = [x_0, y_0, x_1, y_1, ...]`), writing the interleaved
    /// results into `out`. Each stored entry is read once and used for
    /// both vectors — the point of pairing (see [`pcg_jacobi2`]).
    ///
    /// # Panics
    ///
    /// Panics when `xy` or `out` length differs from `2 * n`.
    pub fn mul_vec2(&self, xy: &[f64], out: &mut [f64]) {
        assert_eq!(xy.len(), 2 * self.n);
        assert_eq!(out.len(), 2 * self.n);
        for i in 0..self.n {
            let mut ax = 0.0;
            let mut ay = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let v = self.values[k];
                let j = self.col_idx[k];
                ax += v * xy[2 * j];
                ay += v * xy[2 * j + 1];
            }
            out[2 * i] = ax;
            out[2 * i + 1] = ay;
        }
    }

    /// [`CsrMatrix::mul_vec2`] that also returns the two dot products
    /// `[x · (A x), y · (A y)]`, accumulated in row order during the
    /// same traversal — CG needs `pᵀAp` right after `Ap`, and fusing
    /// the dot into the product saves a full pass over both vectors.
    ///
    /// # Panics
    ///
    /// Panics when `xy` or `out` length differs from `2 * n`.
    pub fn mul_vec2_dot(&self, xy: &[f64], out: &mut [f64]) -> [f64; 2] {
        assert_eq!(xy.len(), 2 * self.n);
        assert_eq!(out.len(), 2 * self.n);
        let mut dot = [0.0f64; 2];
        for i in 0..self.n {
            let mut ax = 0.0;
            let mut ay = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let v = self.values[k];
                let j = self.col_idx[k];
                ax += v * xy[2 * j];
                ay += v * xy[2 * j + 1];
            }
            out[2 * i] = ax;
            out[2 * i + 1] = ay;
            dot[0] += xy[2 * i] * ax;
            dot[1] += xy[2 * i + 1] * ay;
        }
        dot
    }
}

/// Stopping rule and budget for [`pcg_jacobi`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcgConfig {
    /// Stop when `max_i |r_i| / a_ii < tolerance` (Jacobi-displacement
    /// units; see the crate docs). Default `1e-9`.
    pub tolerance: f64,
    /// Iteration budget. Default 10 000.
    pub max_iterations: usize,
}

impl Default for PcgConfig {
    fn default() -> Self {
        PcgConfig {
            tolerance: 1e-9,
            max_iterations: 10_000,
        }
    }
}

/// What a [`pcg_jacobi`] run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct PcgOutcome {
    /// The (approximate) solution.
    pub x: Vec<f64>,
    /// Iterations executed.
    pub iterations: usize,
    /// Final diagonally scaled residual `max_i |r_i| / a_ii`.
    pub residual: f64,
    /// Whether the tolerance was reached within the budget.
    pub converged: bool,
}

/// Diagonally scaled residual inf-norm: `max_i |r_i| / d_i`.
fn scaled_inf_norm(r: &[f64], d: &[f64]) -> f64 {
    r.iter()
        .zip(d)
        .map(|(&ri, &di)| (ri / di).abs())
        .fold(0.0, f64::max)
}

/// Solves `A x = b` by conjugate gradient with a Jacobi preconditioner,
/// starting from `x0`.
///
/// `A` must be symmetric positive definite with a strictly positive
/// diagonal; neither is checked (the cost would dwarf the solve), but a
/// zero or negative diagonal entry makes the scaled residual infinite
/// or meaningless, and an indefinite matrix can stall the recurrence —
/// the run then ends with `converged: false` rather than panicking.
///
/// # Panics
///
/// Panics when `b` or `x0` length differs from `a.n()`.
#[must_use]
pub fn pcg_jacobi(a: &CsrMatrix, b: &[f64], x0: &[f64], config: &PcgConfig) -> PcgOutcome {
    let n = a.n();
    assert_eq!(b.len(), n);
    assert_eq!(x0.len(), n);
    if n == 0 {
        return PcgOutcome {
            x: Vec::new(),
            iterations: 0,
            residual: 0.0,
            converged: true,
        };
    }
    let d = a.diagonal();

    let mut x = x0.to_vec();
    // r = b - A x
    let mut r = vec![0.0; n];
    a.mul_vec(&x, &mut r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    let mut residual = scaled_inf_norm(&r, d);
    if residual < config.tolerance {
        return PcgOutcome {
            x,
            iterations: 0,
            residual,
            converged: true,
        };
    }

    // z = M⁻¹ r with M = diag(A).
    let mut z: Vec<f64> = r.iter().zip(d).map(|(&ri, &di)| ri / di).collect();
    let mut p = z.clone();
    let mut rz: f64 = r.iter().zip(&z).map(|(&ri, &zi)| ri * zi).sum();
    let mut ap = vec![0.0; n];

    let mut iterations = 0;
    while iterations < config.max_iterations {
        iterations += 1;
        a.mul_vec(&p, &mut ap);
        let pap: f64 = p.iter().zip(&ap).map(|(&pi, &api)| pi * api).sum();
        if !pap.is_finite() || pap <= 0.0 {
            // Breakdown (indefinite or numerically exhausted): report
            // the current iterate honestly.
            break;
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        residual = scaled_inf_norm(&r, d);
        if residual < config.tolerance {
            return PcgOutcome {
                x,
                iterations,
                residual,
                converged: true,
            };
        }
        for i in 0..n {
            z[i] = r[i] / d[i];
        }
        let rz_next: f64 = r.iter().zip(&z).map(|(&ri, &zi)| ri * zi).sum();
        let beta = rz_next / rz;
        rz = rz_next;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }

    PcgOutcome {
        x,
        iterations,
        residual,
        converged: false,
    }
}

/// What a [`pcg_jacobi2`] run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct Pcg2Outcome {
    /// The (approximate) solution of `A x = bx`.
    pub x: Vec<f64>,
    /// The (approximate) solution of `A y = by`.
    pub y: Vec<f64>,
    /// Iterations executed (the slower of the two systems).
    pub iterations: usize,
    /// The larger of the two final scaled residuals.
    pub residual: f64,
    /// Whether both systems reached the tolerance within the budget.
    pub converged: bool,
}

/// Solves the two systems `A x = bx` and `A y = by` (same SPD matrix,
/// two right-hand sides) with paired Jacobi-preconditioned CG. The two
/// Krylov recurrences run in lockstep over one interleaved matrix
/// traversal ([`CsrMatrix::mul_vec2`]) — each stored entry is read once
/// per iteration instead of once per system, which roughly halves the
/// dominant cost. A system that converges (or breaks down) early is
/// frozen while the other finishes.
///
/// Same preconditions and stopping rule as [`pcg_jacobi`].
///
/// # Panics
///
/// Panics when any vector length differs from `a.n()`.
#[must_use]
pub fn pcg_jacobi2(
    a: &CsrMatrix,
    bx: &[f64],
    by: &[f64],
    x0: &[f64],
    y0: &[f64],
    config: &PcgConfig,
) -> Pcg2Outcome {
    pcg_jacobi2_traced(a, bx, by, x0, y0, config, &anr_trace::Tracer::disabled())
}

/// [`pcg_jacobi2`] with per-iteration observability: after every CG
/// iteration a `pcg_iter` event carrying the iteration number and the
/// larger of the two scaled residuals is emitted on `tracer`. Tracing is
/// observation only — the arithmetic is identical to [`pcg_jacobi2`],
/// and a disabled tracer reduces this to the plain solver.
///
/// # Panics
///
/// Panics when any vector length differs from `a.n()`.
#[must_use]
pub fn pcg_jacobi2_traced(
    a: &CsrMatrix,
    bx: &[f64],
    by: &[f64],
    x0: &[f64],
    y0: &[f64],
    config: &PcgConfig,
    tracer: &anr_trace::Tracer,
) -> Pcg2Outcome {
    let n = a.n();
    assert_eq!(bx.len(), n);
    assert_eq!(by.len(), n);
    assert_eq!(x0.len(), n);
    assert_eq!(y0.len(), n);
    if n == 0 {
        return Pcg2Outcome {
            x: Vec::new(),
            y: Vec::new(),
            iterations: 0,
            residual: 0.0,
            converged: true,
        };
    }
    let d = a.diagonal();
    let b = |i: usize, lane: usize| if lane == 0 { bx[i] } else { by[i] };

    // Interleaved state: lane 0 = x at even indices, lane 1 = y at odd.
    let mut u = vec![0.0; 2 * n];
    for i in 0..n {
        u[2 * i] = x0[i];
        u[2 * i + 1] = y0[i];
    }
    let mut r = vec![0.0; 2 * n];
    a.mul_vec2(&u, &mut r);
    for i in 0..n {
        for lane in 0..2 {
            r[2 * i + lane] = b(i, lane) - r[2 * i + lane];
        }
    }
    let lane_residual = |r: &[f64], lane: usize| -> f64 {
        (0..n)
            .map(|i| (r[2 * i + lane] / d[i]).abs())
            .fold(0.0, f64::max)
    };
    let mut residuals = [lane_residual(&r, 0), lane_residual(&r, 1)];
    // active = still iterating; converged = reached tolerance (a lane
    // can stop active without converging on breakdown).
    let mut active = [
        residuals[0] >= config.tolerance,
        residuals[1] >= config.tolerance,
    ];
    let mut converged = [!active[0], !active[1]];

    let mut z = vec![0.0; 2 * n];
    for i in 0..n {
        z[2 * i] = r[2 * i] / d[i];
        z[2 * i + 1] = r[2 * i + 1] / d[i];
    }
    let mut p = z.clone();
    let mut rz = [0.0f64; 2];
    for i in 0..n {
        rz[0] += r[2 * i] * z[2 * i];
        rz[1] += r[2 * i + 1] * z[2 * i + 1];
    }
    let mut ap = vec![0.0; 2 * n];

    let mut iterations = 0;
    while (active[0] || active[1]) && iterations < config.max_iterations {
        iterations += 1;
        let pap = a.mul_vec2_dot(&p, &mut ap);
        let mut alpha = [0.0f64; 2];
        for lane in 0..2 {
            if !active[lane] {
                continue;
            }
            if !pap[lane].is_finite() || pap[lane] <= 0.0 {
                // Breakdown: freeze this lane at its current iterate.
                active[lane] = false;
                continue;
            }
            alpha[lane] = rz[lane] / pap[lane];
        }
        // One fused pass: step the iterate and residual, apply the
        // preconditioner (z = r / d), and accumulate both the new r·z
        // and the scaled residual inf-norm — which is exactly max |z|,
        // the same `|r_i| / a_ii` the single-system solver computes.
        let mut rz_next = [0.0f64; 2];
        let mut res = [0.0f64; 2];
        for (i, &di) in d.iter().enumerate() {
            for lane in 0..2 {
                if active[lane] {
                    let k = 2 * i + lane;
                    u[k] += alpha[lane] * p[k];
                    r[k] -= alpha[lane] * ap[k];
                    let zk = r[k] / di;
                    z[k] = zk;
                    rz_next[lane] += r[k] * zk;
                    res[lane] = res[lane].max(zk.abs());
                }
            }
        }
        let mut beta = [0.0f64; 2];
        for lane in 0..2 {
            if !active[lane] {
                continue;
            }
            residuals[lane] = res[lane];
            if residuals[lane] < config.tolerance {
                active[lane] = false;
                converged[lane] = true;
                continue;
            }
            beta[lane] = rz_next[lane] / rz[lane];
            rz[lane] = rz_next[lane];
        }
        if tracer.is_enabled() {
            tracer.event(
                "pcg_iter",
                &[
                    ("iter", anr_trace::TraceValue::U64(iterations as u64)),
                    (
                        "residual",
                        anr_trace::TraceValue::F64(residuals[0].max(residuals[1])),
                    ),
                ],
            );
        }
        // Search-direction update. The lanes converge at nearly the
        // same iteration, so the both-active case gets one contiguous
        // pass; per-lane arithmetic is unchanged either way.
        if active[0] && active[1] {
            for (k, pk) in p.iter_mut().enumerate() {
                *pk = z[k] + beta[k % 2] * *pk;
            }
        } else {
            for lane in 0..2 {
                if active[lane] {
                    for i in 0..n {
                        p[2 * i + lane] = z[2 * i + lane] + beta[lane] * p[2 * i + lane];
                    }
                }
            }
        }
    }

    let mut x = vec![0.0; n];
    let mut y = vec![0.0; n];
    for i in 0..n {
        x[i] = u[2 * i];
        y[i] = u[2 * i + 1];
    }
    Pcg2Outcome {
        x,
        y,
        iterations,
        residual: residuals[0].max(residuals[1]),
        converged: converged[0] && converged[1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1-D Dirichlet Laplacian: tridiagonal [-1, 2, -1], SPD.
    fn path_laplacian(n: usize) -> CsrMatrix {
        let rows: Vec<Vec<(usize, f64)>> = (0..n)
            .map(|i| {
                let mut row = vec![(i, 2.0)];
                if i > 0 {
                    row.push((i - 1, -1.0));
                }
                if i + 1 < n {
                    row.push((i + 1, -1.0));
                }
                row
            })
            .collect();
        CsrMatrix::from_rows(n, &rows)
    }

    #[test]
    fn csr_mul_matches_dense() {
        let a = CsrMatrix::from_rows(
            3,
            &[
                vec![(0, 4.0), (2, 1.0)],
                vec![(1, 3.0)],
                vec![(0, 1.0), (2, 5.0)],
            ],
        );
        assert_eq!(a.nnz(), 5);
        assert_eq!(a.diagonal(), &[4.0, 3.0, 5.0]);
        let mut y = vec![0.0; 3];
        a.mul_vec(&[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, vec![7.0, 6.0, 16.0]);
    }

    #[test]
    fn duplicate_entries_coalesce() {
        let a = CsrMatrix::from_rows(2, &[vec![(0, 1.0), (0, 2.5), (1, -1.0)], vec![(1, 4.0)]]);
        assert_eq!(a.diagonal(), &[3.5, 4.0]);
        let mut y = vec![0.0; 2];
        a.mul_vec(&[2.0, 1.0], &mut y);
        assert_eq!(y, vec![6.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_column_panics() {
        let _ = CsrMatrix::from_rows(2, &[vec![(5, 1.0)], vec![]]);
    }

    #[test]
    fn pcg_solves_path_laplacian() {
        // A x = b with known solution: pick x*, compute b = A x*.
        let n = 200;
        let a = path_laplacian(n);
        let x_star: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let mut b = vec![0.0; n];
        a.mul_vec(&x_star, &mut b);
        let out = pcg_jacobi(&a, &b, &vec![0.0; n], &PcgConfig::default());
        assert!(out.converged, "residual {}", out.residual);
        assert!(out.iterations <= n, "CG finishes in ≤ n steps exactly");
        for (xi, si) in out.x.iter().zip(&x_star) {
            assert!((xi - si).abs() < 1e-6, "{xi} vs {si}");
        }
    }

    #[test]
    fn warm_start_costs_fewer_iterations() {
        let n = 300;
        let a = path_laplacian(n);
        let x_star: Vec<f64> = (0..n).map(|i| (i as f64).sqrt()).collect();
        let mut b = vec![0.0; n];
        a.mul_vec(&x_star, &mut b);
        let cold = pcg_jacobi(&a, &b, &vec![0.0; n], &PcgConfig::default());
        let near: Vec<f64> = x_star.iter().map(|&s| s + 1e-7).collect();
        let warm = pcg_jacobi(&a, &b, &near, &PcgConfig::default());
        assert!(cold.converged && warm.converged);
        assert!(warm.iterations < cold.iterations);
    }

    #[test]
    fn exact_start_converges_immediately() {
        let a = path_laplacian(50);
        let x_star: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let mut b = vec![0.0; 50];
        a.mul_vec(&x_star, &mut b);
        let out = pcg_jacobi(&a, &b, &x_star, &PcgConfig::default());
        assert!(out.converged);
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let n = 400;
        let a = path_laplacian(n);
        let b = vec![1.0; n];
        let out = pcg_jacobi(
            &a,
            &b,
            &vec![0.0; n],
            &PcgConfig {
                tolerance: 1e-12,
                max_iterations: 3,
            },
        );
        assert!(!out.converged);
        assert_eq!(out.iterations, 3);
        assert!(out.residual > 1e-12);
    }

    #[test]
    fn empty_system_is_trivially_solved() {
        let a = CsrMatrix::from_rows(0, &[]);
        let out = pcg_jacobi(&a, &[], &[], &PcgConfig::default());
        assert!(out.converged);
        assert!(out.x.is_empty());
    }

    #[test]
    fn mul_vec2_matches_two_mul_vecs() {
        let n = 60;
        let a = path_laplacian(n);
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut ax = vec![0.0; n];
        let mut ay = vec![0.0; n];
        a.mul_vec(&x, &mut ax);
        a.mul_vec(&y, &mut ay);
        let mut xy = vec![0.0; 2 * n];
        for i in 0..n {
            xy[2 * i] = x[i];
            xy[2 * i + 1] = y[i];
        }
        let mut out = vec![0.0; 2 * n];
        a.mul_vec2(&xy, &mut out);
        for i in 0..n {
            assert_eq!(out[2 * i], ax[i]);
            assert_eq!(out[2 * i + 1], ay[i]);
        }
    }

    #[test]
    fn paired_solve_matches_single_solves() {
        // The paired recurrence is the single recurrence run twice in
        // lockstep, so the iterates are identical arithmetic — compare
        // against pcg_jacobi exactly, not just to tolerance.
        let n = 150;
        let a = path_laplacian(n);
        let x_star: Vec<f64> = (0..n).map(|i| (i as f64 * 0.05).sin()).collect();
        let y_star: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos()).collect();
        let mut bx = vec![0.0; n];
        let mut by = vec![0.0; n];
        a.mul_vec(&x_star, &mut bx);
        a.mul_vec(&y_star, &mut by);
        let zero = vec![0.0; n];
        let cfg = PcgConfig::default();
        let sx = pcg_jacobi(&a, &bx, &zero, &cfg);
        let sy = pcg_jacobi(&a, &by, &zero, &cfg);
        let pair = pcg_jacobi2(&a, &bx, &by, &zero, &zero, &cfg);
        assert!(pair.converged);
        assert_eq!(pair.iterations, sx.iterations.max(sy.iterations));
        assert_eq!(pair.x, sx.x);
        assert_eq!(pair.y, sy.x);
    }

    #[test]
    fn paired_solve_handles_one_lane_already_converged() {
        let n = 80;
        let a = path_laplacian(n);
        let x_star: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut bx = vec![0.0; n];
        a.mul_vec(&x_star, &mut bx);
        let by = vec![1.0; n];
        // Lane 0 starts at its exact solution; lane 1 from zero.
        let out = pcg_jacobi2(&a, &bx, &by, &x_star, &vec![0.0; n], &PcgConfig::default());
        assert!(out.converged);
        for (xi, si) in out.x.iter().zip(&x_star) {
            assert_eq!(xi, si, "the converged lane must stay frozen");
        }
        let mut ay = vec![0.0; n];
        a.mul_vec(&out.y, &mut ay);
        for (ai, bi) in ay.iter().zip(&by) {
            assert!((ai - bi).abs() < 1e-6);
        }
    }

    #[test]
    fn paired_budget_exhaustion_reported() {
        let n = 400;
        let a = path_laplacian(n);
        let b = vec![1.0; n];
        let zero = vec![0.0; n];
        let out = pcg_jacobi2(
            &a,
            &b,
            &b,
            &zero,
            &zero,
            &PcgConfig {
                tolerance: 1e-12,
                max_iterations: 3,
            },
        );
        assert!(!out.converged);
        assert_eq!(out.iterations, 3);
    }

    #[test]
    fn traced_solve_is_observation_only() {
        let n = 150;
        let a = path_laplacian(n);
        let b = vec![1.0; n];
        let zero = vec![0.0; n];
        let cfg = PcgConfig::default();
        let plain = pcg_jacobi2(&a, &b, &b, &zero, &zero, &cfg);
        let tracer = anr_trace::Tracer::ring(4096);
        let traced = pcg_jacobi2_traced(&a, &b, &b, &zero, &zero, &cfg, &tracer);
        assert_eq!(plain, traced, "tracing must not perturb the solve");
        let events = tracer.events();
        assert_eq!(
            events.len(),
            traced.iterations,
            "one pcg_iter per iteration"
        );
        // The residual series is the per-iteration convergence record;
        // its last entry is the outcome's final residual.
        let last = events.last().unwrap();
        assert_eq!(last.name, "pcg_iter");
        match &last.fields[1] {
            ("residual", anr_trace::TraceValue::F64(r)) => assert_eq!(*r, traced.residual),
            f => panic!("unexpected field {f:?}"),
        }
    }

    #[test]
    fn paired_empty_system() {
        let a = CsrMatrix::from_rows(0, &[]);
        let out = pcg_jacobi2(&a, &[], &[], &[], &[], &PcgConfig::default());
        assert!(out.converged);
        assert!(out.x.is_empty() && out.y.is_empty());
    }
}
