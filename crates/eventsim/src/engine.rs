//! The deterministic discrete-event engine.
//!
//! [`EventSim`] executes the same round-indexed protocol semantics as
//! [`anr_distsim::FaultySimulator`], but sparsely: instead of stepping
//! every robot every round, it keeps a time-ordered binary heap of
//! *events* — crash/recovery instants, message deliveries, and node
//! wakeups — and only executes rounds in which at least one event is
//! due. The two engines are **bit-identical** under any common
//! [`FaultPlan`]: same random draws in the same order, same inbox
//! contents, same final node states, same statistics (pinned by the
//! equivalence tests in `tests/equivalence.rs`).
//!
//! ## Why dormancy is behavior-preserving
//!
//! The synchronous harness calls `on_round` on every live robot every
//! round, so a protocol timer can tick anywhere. The event engine
//! instead relies on the [`EventNode::idle`] contract: an idle node's
//! `on_round` with an empty inbox changes no state, sends nothing, and
//! draws no randomness — so skipping it is unobservable. Non-idle
//! nodes keep a wakeup event scheduled every round; idle nodes are
//! woken only by a delivery. This is what turns `Θ(n)` per round into
//! `Θ(active)` per round.
//!
//! ## Event ordering
//!
//! Heap keys are `(due, class, ord)`, unique by construction:
//!
//! | class | meaning    | `ord`                               |
//! |-------|------------|-------------------------------------|
//! | 0     | churn      | position in the round-sorted plan   |
//! | 1     | delivery   | global send sequence number         |
//! | 2     | wakeup     | node index                          |
//!
//! The class order mirrors the synchronous round phases (churn →
//! deliveries → `on_round`); delivery `ord` reproduces the channel's
//! per-recipient inbox order; wakeup `ord` reproduces index-order
//! stepping — which is also what keeps the shared random stream in
//! sync-identical order.

use crate::topology::Topology;
use anr_distsim::fault::FaultRng;
use anr_distsim::{
    ChurnEvent, ChurnKind, DelayModel, Envelope, FaultPlan, FaultStats, Node, Outbox, SimError,
    BROADCAST,
};
use anr_trace::{TraceValue, Tracer};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// A [`Node`] the event engine can put to sleep.
///
/// The default `idle` of `false` is always safe: the node is woken
/// every round, exactly like the synchronous harness. Override it when
/// the node can certify dormancy.
pub trait EventNode: Node {
    /// Dormancy certificate. Returning `true` promises that, until a
    /// message arrives, `on_round` with an empty inbox would change no
    /// state, send nothing, and draw no randomness — so the engine may
    /// skip those calls entirely.
    fn idle(&self) -> bool {
        false
    }
}

pub(crate) const CLASS_CHURN: u8 = 0;
pub(crate) const CLASS_DELIVER: u8 = 1;
pub(crate) const CLASS_WAKE: u8 = 2;

/// Sentinel for "no wakeup scheduled".
pub(crate) const NO_WAKE: u64 = u64::MAX;

/// One scheduled event. Ordering (and equality) use only the
/// `(due, class, ord)` key — payloads are not comparable and never need
/// to be: keys are unique across the heap.
#[derive(Debug, Clone)]
pub(crate) struct Event<M> {
    pub(crate) due: u64,
    pub(crate) class: u8,
    pub(crate) ord: u64,
    pub(crate) payload: Payload<M>,
}

/// Event payload; churn and wakeup events carry everything they need
/// in `ord`.
#[derive(Debug, Clone)]
pub(crate) enum Payload<M> {
    /// Churn (class 0, `ord` indexes the sorted plan) or wakeup
    /// (class 2, `ord` is the node).
    Control,
    /// A message delivery (class 1).
    Deliver {
        /// Sending node.
        from: usize,
        /// Receiving node.
        to: usize,
        /// The payload.
        msg: M,
    },
}

impl<M> Event<M> {
    pub(crate) fn key(&self) -> (u64, u8, u64) {
        (self.due, self.class, self.ord)
    }
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl<M> Eq for Event<M> {}

impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Deterministic discrete-event simulator with the
/// [`FaultySimulator`](anr_distsim::FaultySimulator) fault semantics.
///
/// State is struct-of-arrays: nodes, crash flags, and wakeup slots are
/// parallel vectors indexed by robot; nothing is materialized per
/// round.
pub struct EventSim<N: EventNode, T: Topology> {
    pub(crate) topology: T,
    pub(crate) nodes: Vec<N>,
    pub(crate) crashed: Vec<bool>,
    pub(crate) next_wake: Vec<u64>,
    pub(crate) plan: FaultPlan,
    pub(crate) rng: FaultRng,
    /// Churn events sorted by round (stable, so plan order breaks
    /// ties) — `ord` of class-0 events indexes this list.
    pub(crate) churn: Vec<ChurnEvent>,
    pub(crate) heap: BinaryHeap<Reverse<Event<N::Msg>>>,
    /// Next round to execute == rounds completed so far.
    pub(crate) now: u64,
    /// Global send sequence (delivery `ord`).
    pub(crate) seq: u64,
    pub(crate) pending_msgs: usize,
    pub(crate) started: bool,
    /// Accounting; the `rounds` field is maintained lazily by
    /// [`stats`](EventSim::stats).
    pub(crate) stats: FaultStats,
    pub(crate) tracer: Tracer,
}

impl<N: EventNode, T: Topology> std::fmt::Debug for EventSim<N, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventSim")
            .field("robots", &self.nodes.len())
            .field("now", &self.now)
            .field("queued_events", &self.heap.len())
            .field("pending_msgs", &self.pending_msgs)
            .field("started", &self.started)
            .finish_non_exhaustive()
    }
}

impl<N: EventNode, T: Topology> EventSim<N, T> {
    /// Creates an event simulator over `nodes` connected by `topology`,
    /// misbehaving per `plan`.
    ///
    /// # Errors
    ///
    /// [`SimError::TopologyMismatch`] when `nodes` and `topology`
    /// disagree on the robot count, or
    /// [`SimError::InvalidFaultPlan`] when the plan references robots
    /// outside the topology.
    pub fn new(nodes: Vec<N>, topology: T, plan: FaultPlan) -> Result<Self, SimError> {
        if nodes.len() != topology.len() {
            return Err(SimError::TopologyMismatch {
                nodes: nodes.len(),
                adjacency: topology.len(),
            });
        }
        plan.validate(nodes.len())?;
        let n = nodes.len();
        let mut churn = plan.churn.clone();
        churn.sort_by_key(|ev| ev.round);
        let mut heap = BinaryHeap::with_capacity(churn.len());
        for (i, ev) in churn.iter().enumerate() {
            heap.push(Reverse(Event {
                due: ev.round as u64,
                class: CLASS_CHURN,
                ord: i as u64,
                payload: Payload::Control,
            }));
        }
        let rng = FaultRng::new(plan.seed);
        Ok(EventSim {
            topology,
            nodes,
            crashed: vec![false; n],
            next_wake: vec![NO_WAKE; n],
            plan,
            rng,
            churn,
            heap,
            now: 0,
            seq: 0,
            pending_msgs: 0,
            started: false,
            stats: FaultStats::default(),
            tracer: Tracer::disabled(),
        })
    }

    /// Attaches a tracer: the engine then emits the channel-shaped
    /// `msg_send` / `msg_drop` / `msg_deliver` and `robot_crash` /
    /// `robot_recover` events, plus an `event_pop` counter and a
    /// `heap_depth` histogram sample per executed round. Tracing is
    /// observation only — the run is bit-identical with or without it.
    #[must_use]
    pub fn with_tracer(mut self, tracer: &Tracer) -> Self {
        self.tracer = tracer.clone();
        self
    }

    /// Read access to the nodes.
    #[inline]
    pub fn nodes(&self) -> &[N] {
        &self.nodes
    }

    /// Mutable access to the nodes.
    #[inline]
    pub fn nodes_mut(&mut self) -> &mut [N] {
        &mut self.nodes
    }

    /// Consumes the simulator, returning the nodes.
    pub fn into_nodes(self) -> Vec<N> {
        self.nodes
    }

    /// The topology (mutable: lazy topologies cache rows on query).
    #[inline]
    pub fn topology_mut(&mut self) -> &mut T {
        &mut self.topology
    }

    /// Is robot `i` currently crashed?
    pub fn is_crashed(&self, i: usize) -> bool {
        self.crashed[i]
    }

    /// Rounds completed so far.
    pub fn rounds(&self) -> usize {
        self.now as usize
    }

    /// Accounting so far (field-for-field comparable with
    /// [`FaultySimulator::stats`](anr_distsim::FaultySimulator::stats)).
    pub fn stats(&self) -> FaultStats {
        let mut stats = self.stats;
        stats.rounds = self.now as usize;
        stats
    }

    /// Are any deliveries queued for this or a future round?
    pub fn has_messages_in_flight(&self) -> bool {
        self.pending_msgs > 0
    }

    /// Robots with deliveries queued towards them, sorted ascending —
    /// the same shape as the synchronous simulator's
    /// `pending_recipients()`, and the payload of
    /// [`SimError::NotQuiescent`].
    pub fn pending_recipients(&self) -> Vec<usize> {
        let mut pending: Vec<usize> = self
            .heap
            .iter()
            .filter_map(|Reverse(ev)| match &ev.payload {
                Payload::Deliver { to, .. } => Some(*to),
                Payload::Control => None,
            })
            .collect();
        pending.sort_unstable();
        pending.dedup();
        pending
    }

    /// Schedules a wakeup for `u` at round `due` unless one is already
    /// queued (wakeups are deduplicated per node; the invariant is one
    /// outstanding wakeup at most, due this round or the next).
    fn schedule_wake(&mut self, u: usize, due: u64) {
        if self.next_wake[u] == NO_WAKE {
            self.next_wake[u] = due;
            self.heap.push(Reverse(Event {
                due,
                class: CLASS_WAKE,
                ord: u as u64,
                payload: Payload::Control,
            }));
        }
    }

    /// Offers one `from → to` send to the fault model with the given
    /// arrival base (`base + delay` is the delivery round). Replicates
    /// [`FaultChannel::offer`](anr_distsim::FaultChannel::offer) draw
    /// for draw.
    fn offer(&mut self, from: usize, to: usize, msg: N::Msg, base: u64) {
        let p = self.plan.loss_on(from, to);
        if p > 0.0 && self.rng.unit() < p {
            self.stats.dropped_loss += 1;
            if self.tracer.is_enabled() {
                self.tracer.event(
                    "msg_drop",
                    &[
                        ("from", TraceValue::U64(from as u64)),
                        ("to", TraceValue::U64(to as u64)),
                        ("reason", TraceValue::Str("loss".to_string())),
                    ],
                );
            }
            return;
        }
        let copies = if self.plan.duplication > 0.0 && self.rng.unit() < self.plan.duplication {
            self.stats.duplicated += 1;
            2
        } else {
            1
        };
        for _ in 0..copies {
            let delay = match self.plan.delay {
                DelayModel::None => 0,
                DelayModel::Fixed(k) => k,
                DelayModel::Uniform { min, max } => {
                    if min == max {
                        min
                    } else {
                        self.rng.uniform_usize(min, max)
                    }
                }
            };
            if delay > 0 {
                self.stats.delayed += 1;
            }
            self.heap.push(Reverse(Event {
                due: base + delay as u64,
                class: CLASS_DELIVER,
                ord: self.seq,
                payload: Payload::Deliver {
                    from,
                    to,
                    msg: msg.clone(),
                },
            }));
            self.seq += 1;
            self.pending_msgs += 1;
            self.stats.sent += 1;
            if self.tracer.is_enabled() {
                self.tracer.event(
                    "msg_send",
                    &[
                        ("from", TraceValue::U64(from as u64)),
                        ("to", TraceValue::U64(to as u64)),
                        ("delay", TraceValue::U64(delay as u64)),
                    ],
                );
            }
        }
    }

    /// Commits a node's outbox: broadcasts expand over the neighbor row
    /// in order, unicast destinations are validated against the
    /// topology.
    fn commit_outbox(
        &mut self,
        from: usize,
        mut out: Outbox<N::Msg>,
        base: u64,
    ) -> Result<(), SimError> {
        for (to, msg) in out.take_queued() {
            if to == BROADCAST {
                let count = self.topology.neighbors(from).len();
                for k in 0..count {
                    let nbr = self.topology.neighbors(from)[k];
                    self.offer(from, nbr, msg.clone(), base);
                }
            } else {
                if !self.topology.has_link(from, to) {
                    return Err(SimError::NotANeighbor { from, to });
                }
                self.offer(from, to, msg, base);
            }
        }
        Ok(())
    }

    /// Applies one churn event (idempotent, like the harness): a
    /// recovery on a non-idle node re-arms its wakeup.
    fn apply_churn(&mut self, ord: usize, round: u64) {
        let ev = self.churn[ord];
        match ev.kind {
            ChurnKind::Crash => {
                if !self.crashed[ev.robot] {
                    self.crashed[ev.robot] = true;
                    self.stats.crashes += 1;
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            "robot_crash",
                            &[
                                ("round", TraceValue::U64(round)),
                                ("robot", TraceValue::U64(ev.robot as u64)),
                            ],
                        );
                    }
                }
            }
            ChurnKind::Recover => {
                if self.crashed[ev.robot] {
                    self.crashed[ev.robot] = false;
                    self.stats.recoveries += 1;
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            "robot_recover",
                            &[
                                ("round", TraceValue::U64(round)),
                                ("robot", TraceValue::U64(ev.robot as u64)),
                            ],
                        );
                    }
                    if !self.nodes[ev.robot].idle() {
                        self.schedule_wake(ev.robot, round);
                    }
                }
            }
        }
    }

    /// Runs `on_start` on every robot live at round 0 (idempotent).
    /// Robots crashed by a round-0 churn event never start.
    ///
    /// # Errors
    ///
    /// Send-validation errors ([`SimError::NotANeighbor`]).
    pub fn start(&mut self) -> Result<(), SimError> {
        if self.started {
            return Ok(());
        }
        self.started = true;
        // Round-0 churn precedes `on_start`, as in the harness. Only
        // churn events can be queued at this point.
        while let Some(Reverse(top)) = self.heap.peek() {
            if top.due != 0 || top.class != CLASS_CHURN {
                break;
            }
            let ord = top.ord as usize;
            self.heap.pop();
            self.apply_churn(ord, 0);
        }
        for i in 0..self.nodes.len() {
            if self.crashed[i] {
                continue;
            }
            let mut out = Outbox::new();
            self.nodes[i].on_start(&mut out);
            // `on_start` sends arrive at round `delay` — the slot the
            // synchronous channel files them under.
            self.commit_outbox(i, out, 0)?;
        }
        for i in 0..self.nodes.len() {
            if !self.crashed[i] && !self.nodes[i].idle() {
                self.schedule_wake(i, 0);
            }
        }
        Ok(())
    }

    /// Executes every event due at round `t` (which must be the
    /// earliest due round in the heap), then the `on_round` phase for
    /// woken robots in index order.
    fn execute_round(&mut self, t: u64) -> Result<(), SimError> {
        if self.tracer.is_enabled() {
            self.tracer
                .hist_record("heap_depth", self.heap.len() as f64);
        }
        let mut inboxes: BTreeMap<usize, Vec<Envelope<N::Msg>>> = BTreeMap::new();
        let mut crash_drops: BTreeMap<usize, u64> = BTreeMap::new();
        let mut woken: Vec<usize> = Vec::new();
        let mut popped = 0u64;
        while let Some(Reverse(top)) = self.heap.peek() {
            if top.due != t {
                debug_assert!(top.due > t, "events must not be overdue");
                break;
            }
            let Some(Reverse(ev)) = self.heap.pop() else {
                break;
            };
            popped += 1;
            match ev.payload {
                Payload::Control => {
                    if ev.class == CLASS_CHURN {
                        self.apply_churn(ev.ord as usize, t);
                    } else {
                        let u = ev.ord as usize;
                        self.next_wake[u] = NO_WAKE;
                        if !self.crashed[u] {
                            woken.push(u);
                        }
                    }
                }
                Payload::Deliver { from, to, msg } => {
                    self.pending_msgs -= 1;
                    if self.crashed[to] {
                        self.stats.dropped_crash += 1;
                        *crash_drops.entry(to).or_insert(0) += 1;
                    } else {
                        self.stats.delivered += 1;
                        inboxes.entry(to).or_default().push(Envelope { from, msg });
                        self.schedule_wake(to, t);
                    }
                }
            }
        }
        if self.tracer.is_enabled() {
            self.tracer.counter_add("event_pop", popped);
            for (&to, &count) in &crash_drops {
                self.tracer.event(
                    "msg_drop",
                    &[
                        ("to", TraceValue::U64(to as u64)),
                        ("count", TraceValue::U64(count)),
                        ("reason", TraceValue::Str("crash".to_string())),
                    ],
                );
            }
            for (&to, inbox) in &inboxes {
                self.tracer.event(
                    "msg_deliver",
                    &[
                        ("to", TraceValue::U64(to as u64)),
                        ("count", TraceValue::U64(inbox.len() as u64)),
                    ],
                );
            }
        }
        // Wakeups pop in index order (class 2, ord = node), so `woken`
        // is already ascending — the synchronous stepping order.
        debug_assert!(woken.windows(2).all(|w| w[0] < w[1]));
        for u in woken {
            let inbox = inboxes.remove(&u).unwrap_or_default();
            let mut out = Outbox::new();
            self.nodes[u].on_round(t as usize, &inbox, &mut out);
            self.commit_outbox(u, out, t + 1)?;
            if !self.nodes[u].idle() {
                self.schedule_wake(u, t + 1);
            }
        }
        debug_assert!(inboxes.is_empty(), "inboxes only exist for woken robots");
        self.now = t + 1;
        Ok(())
    }

    /// Due round of the earliest queued event, if any.
    fn next_due(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(ev)| ev.due)
    }

    /// Advances exactly `k` rounds of simulated time. Rounds with no
    /// events complete in O(1); rounds with events execute them. This
    /// leaves the simulator in the state the synchronous harness
    /// reaches after `k` calls to `step_round`.
    ///
    /// # Errors
    ///
    /// Send-validation errors ([`SimError::NotANeighbor`]).
    pub fn run_rounds(&mut self, k: usize) -> Result<FaultStats, SimError> {
        self.start()?;
        let target = self.now + k as u64;
        while let Some(due) = self.next_due() {
            if due >= target {
                break;
            }
            self.execute_round(due)?;
        }
        self.now = target;
        Ok(self.stats())
    }

    /// Runs until no deliveries are queued — the event twin of
    /// [`FaultySimulator::run_until_quiet`](anr_distsim::FaultySimulator::run_until_quiet),
    /// with the same early-stop caveat for retransmission timers.
    ///
    /// # Errors
    ///
    /// [`SimError::NotQuiescent`] (with the pending recipients) when
    /// `max_rounds` is exceeded, plus any send-validation error.
    pub fn run_until_quiet(&mut self, max_rounds: usize) -> Result<FaultStats, SimError> {
        self.start()?;
        let horizon = self.now + max_rounds as u64;
        while self.pending_msgs > 0 {
            match self.next_due() {
                Some(due) if due < horizon => self.execute_round(due)?,
                _ => {
                    self.now = horizon;
                    return Err(SimError::NotQuiescent {
                        max_rounds,
                        pending: self.pending_recipients(),
                    });
                }
            }
        }
        Ok(self.stats())
    }

    /// Runs until `done(nodes)` is true, for at most `max_rounds`
    /// *total* rounds — the event twin of
    /// [`FaultySimulator::run_until`](anr_distsim::FaultySimulator::run_until),
    /// whose cap is likewise an absolute round count.
    ///
    /// # Errors
    ///
    /// [`SimError::NotQuiescent`] (with the pending recipients) when
    /// the round cap is reached before convergence, plus any
    /// send-validation error.
    pub fn run_until<F>(&mut self, max_rounds: usize, done: F) -> Result<FaultStats, SimError>
    where
        F: Fn(&[N]) -> bool,
    {
        self.start()?;
        let horizon = max_rounds as u64;
        loop {
            if done(&self.nodes) {
                return Ok(self.stats());
            }
            if self.now >= horizon {
                return Err(SimError::NotQuiescent {
                    max_rounds,
                    pending: self.pending_recipients(),
                });
            }
            match self.next_due() {
                Some(due) if due < horizon => self.execute_round(due)?,
                _ => {
                    // The synchronous harness burns the remaining
                    // rounds stepping idle robots (no-ops under the
                    // idle contract); jump straight to the horizon.
                    self.now = horizon;
                    return Err(SimError::NotQuiescent {
                        max_rounds,
                        pending: self.pending_recipients(),
                    });
                }
            }
        }
    }
}
