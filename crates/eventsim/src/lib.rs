//! # anr-eventsim — discrete-event simulation core for large swarms
//!
//! The synchronous [`anr_distsim`] simulators materialize every robot
//! every round: stepping `n` robots for `R` rounds costs `Θ(nR)` even
//! when almost all robots are dormant. That blocks the million-robot
//! scale the paper's marching scenarios ultimately target. This crate
//! is the complementary execution layer: a **deterministic
//! discrete-event engine** that only spends work where something
//! happens.
//!
//! * [`EventSim`] — a time-ordered binary heap of message-delivery,
//!   node-wakeup, and crash/recovery events over compact
//!   struct-of-arrays per-node state. Rounds with no events cost
//!   nothing; dormant robots are never touched.
//! * [`Topology`] — pluggable neighbor discovery:
//!   [`ExplicitTopology`] wraps a prebuilt adjacency,
//!   [`GridTopology`] resolves neighbor rows **lazily** from positions
//!   using the same uniform-grid prune as
//!   [`anr_netgraph::UnitDiskGraph`].
//! * Fault semantics — the seeded [`anr_distsim::FaultPlan`] model
//!   (loss, delay/reordering, duplication, churn) is mapped onto event
//!   timestamps so a run is **bit-identical** to the synchronous
//!   [`anr_distsim::FaultySimulator`] under any common plan (pinned by
//!   equivalence tests).
//! * Checkpoint/restore — [`EventSim::save`] emits a versioned,
//!   byte-stable `anr-eventsim-ckpt/1` snapshot of heap + node state +
//!   RNG streams; a restored run is bit-identical to an uninterrupted
//!   one.
//! * [`protocols`] — the ack/retransmit flooding, hop-field, and
//!   boundary-loop protocols from [`anr_netgraph::robust`], ported onto
//!   the event engine behind the existing [`anr_distsim::Node`] trait.
//!
//! ## Determinism rules
//!
//! Events are ordered by `(due round, class, ord)` where the class
//! order is churn < delivery < wakeup — mirroring the synchronous
//! round phases — and `ord` is a global send sequence number for
//! deliveries (reproducing inbox order), the plan position for churn,
//! and the node index for wakeups. All keys are unique, so heap order
//! is a total order and every run (and every snapshot) is a pure
//! function of `(nodes, topology, plan)`.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod ckpt;
pub mod engine;
pub mod protocols;
pub mod topology;

pub use ckpt::{CkptError, CKPT_MAGIC};
pub use engine::{EventNode, EventSim};
pub use protocols::{run_event_boundary_loop, run_event_flood_sum, run_event_hop_field};
pub use topology::{ExplicitTopology, GridTopology, Topology};
