//! Versioned, byte-stable checkpoint/restore for [`EventSim`].
//!
//! A snapshot captures the complete dynamic state of a run at a round
//! boundary — event heap, node state, crash flags, wakeup slots, the
//! fault RNG stream, and accounting — under the format tag
//! [`CKPT_MAGIC`] (`anr-eventsim-ckpt/1`). The topology is **not**
//! embedded: it is a pure function of the deployment, so the caller
//! supplies it again on restore (and a robot-count mismatch is a typed
//! error).
//!
//! Guarantees, pinned by `tests/checkpoint.rs`:
//!
//! * **Resumability** — `run(t1); save; restore; run(t2)` reaches a
//!   state byte-identical to `run(t1 + t2)` uninterrupted, under any
//!   fault plan.
//! * **Canonical bytes** — heap entries are serialized in key order
//!   (keys are unique, so the order is total); equal states produce
//!   identical snapshots, so snapshots can themselves be compared.
//! * **No panics** — corrupted, truncated, or alien input surfaces as
//!   a [`CkptError`].
//!
//! ## Layout
//!
//! ```text
//! "anr-eventsim-ckpt/1\n"            ASCII magic line
//! body                                little-endian, via anr_distsim::snapshot
//!   now, seq, started
//!   rng state, fault plan
//!   crashed flags
//!   wakeup slots (sparse, ascending node index)
//!   stats (sent, delivered, drops, duplicates, delays, churn counts)
//!   heap entries, sorted by (due, class, ord)
//!   nodes
//! checksum                            FNV-1a 64 over everything above
//! ```

use crate::engine::{
    Event, EventNode, EventSim, Payload, CLASS_CHURN, CLASS_DELIVER, CLASS_WAKE, NO_WAKE,
};
use crate::topology::Topology;
use anr_distsim::fault::FaultRng;
use anr_distsim::snapshot::{Persist, PersistError, SnapshotReader, SnapshotWriter};
use anr_distsim::{FaultPlan, FaultStats};
use anr_trace::Tracer;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;

/// Format tag of the snapshot layout this module reads and writes.
pub const CKPT_MAGIC: &str = "anr-eventsim-ckpt/1";

/// Why a snapshot could not be restored.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CkptError {
    /// The input does not start with [`CKPT_MAGIC`].
    BadMagic,
    /// The input is shorter than the fixed framing (magic + checksum).
    Truncated,
    /// The checksum over magic + body did not match.
    ChecksumMismatch {
        /// Checksum recorded in the snapshot.
        expected: u64,
        /// Checksum recomputed over the input.
        actual: u64,
    },
    /// The snapshot was taken over a different robot count than the
    /// supplied topology provides.
    TopologyMismatch {
        /// Robots in the snapshot.
        snapshot: usize,
        /// Robots in the supplied topology.
        topology: usize,
    },
    /// The body failed structural decoding.
    Codec(PersistError),
    /// The body decoded but left unread bytes.
    TrailingBytes {
        /// Bytes left over.
        extra: usize,
    },
    /// A decoded field is inconsistent with the rest of the snapshot
    /// (e.g. an out-of-range node index).
    Inconsistent {
        /// What was inconsistent.
        context: &'static str,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::BadMagic => write!(f, "snapshot does not start with {CKPT_MAGIC:?}"),
            CkptError::Truncated => write!(f, "snapshot shorter than its fixed framing"),
            CkptError::ChecksumMismatch { expected, actual } => write!(
                f,
                "snapshot checksum mismatch: recorded {expected:#018x}, computed {actual:#018x}"
            ),
            CkptError::TopologyMismatch { snapshot, topology } => write!(
                f,
                "snapshot has {snapshot} robots but the topology has {topology}"
            ),
            CkptError::Codec(err) => write!(f, "snapshot body malformed: {err}"),
            CkptError::TrailingBytes { extra } => {
                write!(f, "snapshot body has {extra} trailing bytes")
            }
            CkptError::Inconsistent { context } => {
                write!(f, "snapshot is internally inconsistent: {context}")
            }
        }
    }
}

impl Error for CkptError {}

impl From<PersistError> for CkptError {
    fn from(err: PersistError) -> Self {
        CkptError::Codec(err)
    }
}

/// FNV-1a 64-bit over `bytes`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn persist_stats(stats: &FaultStats, w: &mut SnapshotWriter) {
    stats.sent.persist(w);
    stats.delivered.persist(w);
    stats.dropped_loss.persist(w);
    stats.dropped_crash.persist(w);
    stats.duplicated.persist(w);
    stats.delayed.persist(w);
    stats.crashes.persist(w);
    stats.recoveries.persist(w);
}

fn restore_stats(r: &mut SnapshotReader<'_>) -> Result<FaultStats, PersistError> {
    Ok(FaultStats {
        rounds: 0,
        sent: usize::restore(r)?,
        delivered: usize::restore(r)?,
        dropped_loss: usize::restore(r)?,
        dropped_crash: usize::restore(r)?,
        duplicated: usize::restore(r)?,
        delayed: usize::restore(r)?,
        crashes: usize::restore(r)?,
        recoveries: usize::restore(r)?,
    })
}

impl<N, T> EventSim<N, T>
where
    N: EventNode + Persist,
    N::Msg: Persist,
    T: Topology,
{
    /// Serializes the full run state as an `anr-eventsim-ckpt/1`
    /// snapshot. Byte-stable: equal states yield identical bytes.
    ///
    /// Take snapshots at round boundaries (between `run_*` calls);
    /// inboxes are always drained within a round, so none exist to
    /// capture.
    pub fn save(&self) -> Vec<u8> {
        let _span = self.tracer.span("ckpt_write");
        let mut w = SnapshotWriter::new();
        w.put_bytes(CKPT_MAGIC.as_bytes());
        w.put_u8(b'\n');
        self.now.persist(&mut w);
        self.seq.persist(&mut w);
        self.started.persist(&mut w);
        self.rng.persist(&mut w);
        self.plan.persist(&mut w);
        self.crashed.persist(&mut w);
        let wakes: Vec<(usize, u64)> = self
            .next_wake
            .iter()
            .enumerate()
            .filter(|&(_, &due)| due != NO_WAKE)
            .map(|(i, &due)| (i, due))
            .collect();
        wakes.persist(&mut w);
        persist_stats(&self.stats, &mut w);
        // Canonical heap order: sorted by the unique (due, class, ord)
        // key. BinaryHeap iteration order is unspecified, so sort.
        let mut entries: Vec<&Event<N::Msg>> = self.heap.iter().map(|Reverse(ev)| ev).collect();
        entries.sort_by_key(|ev| ev.key());
        w.put_u64(entries.len() as u64);
        for ev in entries {
            ev.due.persist(&mut w);
            ev.class.persist(&mut w);
            ev.ord.persist(&mut w);
            if let Payload::Deliver { from, to, msg } = &ev.payload {
                from.persist(&mut w);
                to.persist(&mut w);
                msg.persist(&mut w);
            }
        }
        self.nodes.persist(&mut w);
        let checksum = fnv1a(w.as_bytes());
        w.put_u64(checksum);
        if self.tracer.is_enabled() {
            self.tracer.counter_add("ckpt_bytes", w.len() as u64);
        }
        w.into_bytes()
    }

    /// Rebuilds a run from a [`save`](EventSim::save) snapshot and the
    /// deployment's topology. The restored simulator continues
    /// bit-identically to the uninterrupted original.
    ///
    /// # Errors
    ///
    /// [`CkptError`] on any malformed input — wrong magic, failed
    /// checksum, truncation, codec errors, trailing bytes, or a robot
    /// count that disagrees with `topology`.
    pub fn restore(bytes: &[u8], topology: T) -> Result<Self, CkptError> {
        Self::restore_traced(bytes, topology, &Tracer::disabled())
    }

    /// [`restore`](EventSim::restore) with a tracer attached from the
    /// start (so the `ckpt_restore` span is captured too).
    ///
    /// # Errors
    ///
    /// See [`restore`](EventSim::restore).
    pub fn restore_traced(bytes: &[u8], topology: T, tracer: &Tracer) -> Result<Self, CkptError> {
        let _span = tracer.span("ckpt_restore");
        let magic_len = CKPT_MAGIC.len() + 1;
        if bytes.len() < magic_len + 8 {
            return Err(CkptError::Truncated);
        }
        if &bytes[..CKPT_MAGIC.len()] != CKPT_MAGIC.as_bytes() || bytes[CKPT_MAGIC.len()] != b'\n' {
            return Err(CkptError::BadMagic);
        }
        let body_end = bytes.len() - 8;
        let mut tail = [0u8; 8];
        tail.copy_from_slice(&bytes[body_end..]);
        let expected = u64::from_le_bytes(tail);
        let actual = fnv1a(&bytes[..body_end]);
        if expected != actual {
            return Err(CkptError::ChecksumMismatch { expected, actual });
        }
        let mut r = SnapshotReader::new(&bytes[magic_len..body_end]);
        let now = u64::restore(&mut r)?;
        let seq = u64::restore(&mut r)?;
        let started = bool::restore(&mut r)?;
        let rng = FaultRng::restore(&mut r)?;
        let plan = FaultPlan::restore(&mut r)?;
        let crashed = Vec::<bool>::restore(&mut r)?;
        let n = crashed.len();
        if topology.len() != n {
            return Err(CkptError::TopologyMismatch {
                snapshot: n,
                topology: topology.len(),
            });
        }
        let wakes = Vec::<(usize, u64)>::restore(&mut r)?;
        let mut next_wake = vec![NO_WAKE; n];
        for (i, due) in wakes {
            if i >= n {
                return Err(CkptError::Inconsistent {
                    context: "wakeup slot node index out of range",
                });
            }
            next_wake[i] = due;
        }
        let stats = restore_stats(&mut r)?;
        let entry_count = u64::restore(&mut r)?;
        let mut heap = BinaryHeap::new();
        let mut pending_msgs = 0usize;
        let mut max_churn_ord: Option<u64> = None;
        for _ in 0..entry_count {
            let due = u64::restore(&mut r)?;
            let class = u8::restore(&mut r)?;
            let ord = u64::restore(&mut r)?;
            let payload = match class {
                CLASS_CHURN => {
                    max_churn_ord = Some(max_churn_ord.unwrap_or(0).max(ord));
                    Payload::Control
                }
                CLASS_WAKE => {
                    if ord >= n as u64 {
                        return Err(CkptError::Inconsistent {
                            context: "wakeup event node index out of range",
                        });
                    }
                    Payload::Control
                }
                CLASS_DELIVER => {
                    pending_msgs += 1;
                    let from = usize::restore(&mut r)?;
                    let to = usize::restore(&mut r)?;
                    if to >= n {
                        return Err(CkptError::Inconsistent {
                            context: "delivery recipient out of range",
                        });
                    }
                    Payload::Deliver {
                        from,
                        to,
                        msg: N::Msg::restore(&mut r)?,
                    }
                }
                tag => {
                    return Err(CkptError::Codec(PersistError::BadTag {
                        tag,
                        context: "event class",
                    }))
                }
            };
            heap.push(Reverse(Event {
                due,
                class,
                ord,
                payload,
            }));
        }
        let nodes = Vec::<N>::restore(&mut r)?;
        if nodes.len() != n {
            return Err(CkptError::Inconsistent {
                context: "node count disagrees with crash flags",
            });
        }
        if r.remaining() != 0 {
            return Err(CkptError::TrailingBytes {
                extra: r.remaining(),
            });
        }
        // The sorted churn list is a pure function of the plan — the
        // same stable sort `new` applies. Un-popped churn events must
        // reference it.
        let mut churn = plan.churn.clone();
        churn.sort_by_key(|ev| ev.round);
        if max_churn_ord.is_some_and(|ord| ord >= churn.len() as u64) {
            return Err(CkptError::Inconsistent {
                context: "queued churn event outside the plan's schedule",
            });
        }
        Ok(EventSim {
            topology,
            nodes,
            crashed,
            next_wake,
            plan,
            rng,
            churn,
            heap,
            now,
            seq,
            pending_msgs,
            started,
            stats,
            tracer: tracer.clone(),
        })
    }
}
