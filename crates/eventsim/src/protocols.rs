//! The robust distributed protocols, ported onto the event engine.
//!
//! The node types are reused verbatim from [`anr_netgraph::robust`] —
//! they already implement [`anr_distsim::Node`], so porting them is a
//! matter of certifying dormancy: each gets an [`EventNode`] impl
//! delegating to its `is_idle` predicate (no pending retransmissions;
//! for the boundary initiator, additionally a dead restart timer).
//!
//! The runners mirror the synchronous ones
//! ([`run_robust_flood_sum`](anr_netgraph::robust::run_robust_flood_sum)
//! etc.) and produce identical results and statistics under the same
//! fault plan — the equivalence tests drive both and compare.

use crate::engine::{EventNode, EventSim};
use crate::topology::ExplicitTopology;
use anr_distsim::{FaultPlan, SimError};
use anr_netgraph::robust::{
    RetransmitConfig, RobustBoundaryLoopNode, RobustFloodNode, RobustHopFieldNode, RobustRunOutcome,
};

impl EventNode for RobustFloodNode {
    fn idle(&self) -> bool {
        self.is_idle()
    }
}

impl EventNode for RobustHopFieldNode {
    fn idle(&self) -> bool {
        self.is_idle()
    }
}

impl EventNode for RobustBoundaryLoopNode {
    fn idle(&self) -> bool {
        self.is_idle()
    }
}

/// Event-engine twin of
/// [`run_robust_flood_sum`](anr_netgraph::robust::run_robust_flood_sum):
/// ack/retransmit flooding of `values` over `adjacency` under `plan`;
/// returns each robot's learned sum.
///
/// # Errors
///
/// Propagates engine errors; [`SimError::NotQuiescent`] when the
/// protocol does not converge within `max_rounds`.
pub fn run_event_flood_sum(
    values: &[f64],
    adjacency: &[Vec<usize>],
    plan: FaultPlan,
    cfg: RetransmitConfig,
    max_rounds: usize,
) -> Result<RobustRunOutcome<Vec<f64>>, SimError> {
    let n = values.len();
    let nodes: Vec<RobustFloodNode> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| RobustFloodNode::new(i, v, n, adjacency[i].clone(), cfg))
        .collect();
    let topology = ExplicitTopology::new(adjacency.to_vec())?;
    let mut sim = EventSim::new(nodes, topology, plan)?;
    let stats = sim.run_until(max_rounds, |nodes| {
        nodes.iter().all(RobustFloodNode::is_settled)
    })?;
    // Drain the tail: in-flight acks/dups may still be delivered.
    let stats = sim.run_until_quiet(max_rounds.saturating_sub(stats.rounds))?;
    Ok(RobustRunOutcome {
        results: sim.into_nodes().iter().map(RobustFloodNode::sum).collect(),
        stats,
    })
}

/// Event-engine twin of
/// [`run_robust_hop_field`](anr_netgraph::robust::run_robust_hop_field):
/// ack/retransmit multi-source BFS; `None` entries mark robots no
/// source can reach.
///
/// # Errors
///
/// Propagates engine errors; [`SimError::NotQuiescent`] when the
/// protocol does not settle within `max_rounds`.
pub fn run_event_hop_field(
    sources: &[bool],
    adjacency: &[Vec<usize>],
    plan: FaultPlan,
    cfg: RetransmitConfig,
    max_rounds: usize,
) -> Result<RobustRunOutcome<Vec<Option<usize>>>, SimError> {
    let nodes: Vec<RobustHopFieldNode> = sources
        .iter()
        .enumerate()
        .map(|(i, &is_source)| RobustHopFieldNode::new(is_source, adjacency[i].clone(), cfg))
        .collect();
    let topology = ExplicitTopology::new(adjacency.to_vec())?;
    let mut sim = EventSim::new(nodes, topology, plan)?;
    let stats = sim.run_until(max_rounds, |nodes| {
        nodes.iter().all(RobustHopFieldNode::is_settled)
    })?;
    let stats = sim.run_until_quiet(max_rounds.saturating_sub(stats.rounds))?;
    Ok(RobustRunOutcome {
        results: sim.into_nodes().into_iter().map(|nd| nd.hops).collect(),
        stats,
    })
}

/// Event-engine twin of
/// [`run_robust_boundary_loop`](anr_netgraph::robust::run_robust_boundary_loop):
/// the per-hop-acked boundary token over a cyclic order of boundary
/// IDs (smallest ID initiates). Returns `(index, loop size)` per
/// vertex in `ids` order.
///
/// # Errors
///
/// Propagates engine errors; [`SimError::NotQuiescent`] when the loop
/// is not fully labeled within `max_rounds`.
///
/// # Panics
///
/// Panics when `ids.len() < 3`.
pub fn run_event_boundary_loop(
    ids: &[usize],
    plan: FaultPlan,
    cfg: RetransmitConfig,
    max_rounds: usize,
) -> Result<RobustRunOutcome<Vec<(usize, usize)>>, SimError> {
    let n = ids.len();
    assert!(n >= 3, "a boundary loop needs at least 3 vertices");
    let initiator_pos = ids
        .iter()
        .enumerate()
        .min_by_key(|&(_, &id)| id)
        .map(|(i, _)| i)
        .unwrap_or(0);
    let restart_after = (n + 2) * (cfg.interval + 1);
    let nodes: Vec<RobustBoundaryLoopNode> = (0..n)
        .map(|i| {
            RobustBoundaryLoopNode::new(i, i == initiator_pos, (i + 1) % n, cfg, restart_after, 16)
        })
        .collect();
    let adjacency: Vec<Vec<usize>> = (0..n).map(|i| vec![(i + n - 1) % n, (i + 1) % n]).collect();
    let topology = ExplicitTopology::new(adjacency)?;
    let mut sim = EventSim::new(nodes, topology, plan)?;
    let stats = sim.run_until(max_rounds, |nodes| {
        nodes.iter().all(RobustBoundaryLoopNode::is_settled)
    })?;
    let stats = sim.run_until_quiet(max_rounds.saturating_sub(stats.rounds))?;
    let mut results = Vec::with_capacity(n);
    for nd in sim.into_nodes() {
        match (nd.index, nd.loop_size) {
            (Some(index), Some(size)) => results.push((index, size)),
            // Unreachable after a settled run; surfaced as an error
            // rather than a panic to keep the engine panic-free.
            _ => {
                return Err(SimError::NotQuiescent {
                    max_rounds,
                    pending: vec![nd.id],
                })
            }
        }
    }
    Ok(RobustRunOutcome { results, stats })
}
