//! Pluggable neighbor discovery for the event engine.
//!
//! The synchronous simulators take a fully materialized
//! `Vec<Vec<usize>>` adjacency. At 10⁶ robots that is still affordable
//! (the unit-disk graph is sparse), but computing every row up front is
//! wasted work when an event-driven run only ever touches a fraction of
//! the swarm. [`GridTopology`] therefore resolves neighbor rows
//! **lazily**: positions are bucketed once into a uniform grid of
//! range-sized cells (the same prune
//! [`UnitDiskGraph::new`](anr_netgraph::UnitDiskGraph::new) uses), and
//! a node's row is computed from its 3×3 cell neighborhood on first
//! use, then cached. Rows come out sorted ascending — byte-identical
//! to the corresponding `UnitDiskGraph` row, which is what keeps the
//! engines equivalent.

use anr_distsim::SimError;
use anr_geom::Point;
use std::collections::BTreeMap;

/// A communication topology the engine can query neighbor-by-neighbor.
///
/// Implementations must be **deterministic** (same row for the same
/// index, every time) and **symmetric** (`v ∈ neighbors(u)` iff
/// `u ∈ neighbors(v)`); rows must not contain the node itself.
pub trait Topology {
    /// Number of nodes.
    fn len(&self) -> usize;

    /// True for an empty topology.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The neighbor row of `u` (may be computed and cached on first
    /// use). The returned order is the broadcast expansion order, so it
    /// must be stable across calls.
    fn neighbors(&mut self, u: usize) -> &[usize];

    /// Is there a link `u — v`?
    fn has_link(&mut self, u: usize, v: usize) -> bool {
        self.neighbors(u).contains(&v)
    }
}

/// A prebuilt adjacency list, validated once at construction.
#[derive(Debug, Clone)]
pub struct ExplicitTopology {
    adjacency: Vec<Vec<usize>>,
}

impl ExplicitTopology {
    /// Wraps `adjacency`, enforcing the same invariants as
    /// [`Simulator::new`](anr_distsim::Simulator::new): in-range
    /// neighbor indices and symmetry.
    ///
    /// # Errors
    ///
    /// [`SimError::BadNeighborIndex`] or
    /// [`SimError::AsymmetricTopology`].
    pub fn new(adjacency: Vec<Vec<usize>>) -> Result<Self, SimError> {
        for (u, nbrs) in adjacency.iter().enumerate() {
            for &v in nbrs {
                if v >= adjacency.len() {
                    return Err(SimError::BadNeighborIndex {
                        node: u,
                        neighbor: v,
                    });
                }
                if !adjacency[v].contains(&u) {
                    return Err(SimError::AsymmetricTopology { from: u, to: v });
                }
            }
        }
        Ok(ExplicitTopology { adjacency })
    }

    /// The wrapped adjacency rows.
    pub fn adjacency(&self) -> &[Vec<usize>] {
        &self.adjacency
    }
}

impl Topology for ExplicitTopology {
    fn len(&self) -> usize {
        self.adjacency.len()
    }

    fn neighbors(&mut self, u: usize) -> &[usize] {
        &self.adjacency[u]
    }
}

/// Lazy unit-disk topology over robot positions.
///
/// Construction buckets the positions into range-sized grid cells —
/// `O(n)` work and memory. Neighbor rows are computed on demand from
/// the 3×3 cell neighborhood and cached, so a run that wakes `k` of
/// `n` robots resolves only `k` rows. Resolved rows are sorted
/// ascending and match
/// [`UnitDiskGraph::adjacency`](anr_netgraph::UnitDiskGraph::adjacency)
/// exactly (same `‖pᵢ − pⱼ‖² ≤ r²` criterion, same order).
#[derive(Debug, Clone)]
pub struct GridTopology {
    positions: Vec<Point>,
    range_sq: f64,
    buckets: BTreeMap<(i64, i64), Vec<usize>>,
    keys: Vec<(i64, i64)>,
    rows: Vec<Option<Vec<usize>>>,
    resolved: usize,
}

impl GridTopology {
    /// Buckets `positions` into cells of side `range`.
    ///
    /// # Panics
    ///
    /// Panics when `range <= 0` or a position is non-finite (the same
    /// contract as [`UnitDiskGraph::new`](anr_netgraph::UnitDiskGraph::new)).
    pub fn new(positions: &[Point], range: f64) -> Self {
        assert!(range > 0.0, "communication range must be positive");
        assert!(
            positions.iter().all(|p| p.is_finite()),
            "positions must be finite"
        );
        let key = |p: Point| -> (i64, i64) {
            ((p.x / range).floor() as i64, (p.y / range).floor() as i64)
        };
        let mut buckets: BTreeMap<(i64, i64), Vec<usize>> = BTreeMap::new();
        let mut keys = Vec::with_capacity(positions.len());
        for (i, &p) in positions.iter().enumerate() {
            let k = key(p);
            keys.push(k);
            buckets.entry(k).or_default().push(i);
        }
        GridTopology {
            positions: positions.to_vec(),
            range_sq: range * range,
            buckets,
            keys,
            rows: vec![None; positions.len()],
            resolved: 0,
        }
    }

    /// Rows resolved so far (observability for the lazy prune).
    pub fn resolved_rows(&self) -> usize {
        self.resolved
    }

    fn compute_row(&self, u: usize) -> Vec<usize> {
        let p = self.positions[u];
        let (kx, ky) = self.keys[u];
        let mut row = Vec::new();
        for dx in -1..=1 {
            for dy in -1..=1 {
                if let Some(cands) = self.buckets.get(&(kx + dx, ky + dy)) {
                    for &j in cands {
                        if j != u && self.positions[j].distance_sq(p) <= self.range_sq {
                            row.push(j);
                        }
                    }
                }
            }
        }
        row.sort_unstable();
        row
    }
}

impl Topology for GridTopology {
    fn len(&self) -> usize {
        self.positions.len()
    }

    fn neighbors(&mut self, u: usize) -> &[usize] {
        if self.rows[u].is_none() {
            let row = self.compute_row(u);
            self.rows[u] = Some(row);
            self.resolved += 1;
        }
        match &self.rows[u] {
            Some(row) => row,
            None => &[],
        }
    }

    fn has_link(&mut self, u: usize, v: usize) -> bool {
        // Rows are sorted ascending; binary search beats the linear
        // default.
        self.neighbors(u).binary_search(&v).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anr_netgraph::UnitDiskGraph;

    fn lattice(cols: usize, rows: usize, pitch: f64) -> Vec<Point> {
        (0..cols * rows)
            .map(|i| Point::new((i % cols) as f64 * pitch, (i / cols) as f64 * pitch))
            .collect()
    }

    #[test]
    fn grid_rows_match_unit_disk_graph() {
        let pts = lattice(7, 5, 55.0);
        let g = UnitDiskGraph::new(&pts, 80.0);
        let mut t = GridTopology::new(&pts, 80.0);
        for u in 0..pts.len() {
            assert_eq!(t.neighbors(u), &g.adjacency()[u][..], "row {u}");
        }
    }

    #[test]
    fn rows_resolve_lazily_and_cache() {
        let pts = lattice(10, 10, 55.0);
        let mut t = GridTopology::new(&pts, 80.0);
        assert_eq!(t.resolved_rows(), 0);
        let row: Vec<usize> = t.neighbors(0).to_vec();
        assert_eq!(t.resolved_rows(), 1);
        assert_eq!(t.neighbors(0), &row[..], "cached row is stable");
        assert_eq!(t.resolved_rows(), 1, "second query hits the cache");
        assert!(t.has_link(0, 1));
        assert!(!t.has_link(0, 99));
    }

    #[test]
    fn explicit_topology_validates() {
        assert!(ExplicitTopology::new(vec![vec![1], vec![0]]).is_ok());
        assert!(matches!(
            ExplicitTopology::new(vec![vec![5], vec![0]]),
            Err(SimError::BadNeighborIndex { .. })
        ));
        assert!(matches!(
            ExplicitTopology::new(vec![vec![1], vec![]]),
            Err(SimError::AsymmetricTopology { .. })
        ));
    }
}
