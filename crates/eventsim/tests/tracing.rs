//! Tracing through the event engine (satellite 2), following the PR 3
//! convention: tracing is **observation only** — a traced run is
//! bit-identical to an untraced one — and the emitted stream is pinned
//! against the engine's own statistics.

use anr_distsim::{DelayModel, FaultPlan, FaultStats};
use anr_eventsim::{EventSim, ExplicitTopology};
use anr_geom::Point;
use anr_netgraph::robust::{RetransmitConfig, RobustFloodNode};
use anr_netgraph::UnitDiskGraph;
use anr_trace::{TraceKind, TraceValue, Tracer};

fn lattice_adjacency(cols: usize, rows: usize) -> Vec<Vec<usize>> {
    let pts: Vec<Point> = (0..cols * rows)
        .map(|i| Point::new((i % cols) as f64 * 55.0, (i / cols) as f64 * 55.0))
        .collect();
    UnitDiskGraph::new(&pts, 80.0).adjacency().to_vec()
}

fn nasty_plan(seed: u64) -> FaultPlan {
    FaultPlan::reliable(seed)
        .with_loss(0.3)
        .with_delay(DelayModel::Uniform { min: 0, max: 2 })
        .with_duplication(0.1)
        .with_crash(4, 2)
        .with_recovery(11, 2)
}

/// Runs flooding for `rounds` rounds, optionally traced; returns the
/// stats, final nodes, and a snapshot for byte-level comparison.
fn run(tracer: Option<&Tracer>) -> (FaultStats, Vec<RobustFloodNode>, Vec<u8>) {
    let adjacency = lattice_adjacency(4, 3);
    let n = adjacency.len();
    let nodes: Vec<RobustFloodNode> = (0..n)
        .map(|i| {
            RobustFloodNode::new(
                i,
                i as f64 + 0.5,
                n,
                adjacency[i].clone(),
                RetransmitConfig::default(),
            )
        })
        .collect();
    let topology = ExplicitTopology::new(adjacency).expect("topology");
    let mut sim = EventSim::new(nodes, topology, nasty_plan(29)).expect("construction");
    if let Some(t) = tracer {
        sim = sim.with_tracer(t);
    }
    sim.run_rounds(30).expect("run");
    let stats = sim.stats();
    let bytes = sim.save();
    (stats, sim.into_nodes(), bytes)
}

#[test]
fn traced_run_is_observation_only() {
    let (s_plain, n_plain, b_plain) = run(None);
    let tracer = Tracer::ring(65_536);
    let (s_traced, n_traced, b_traced) = run(Some(&tracer));
    assert_eq!(s_plain, s_traced, "stats must not depend on tracing");
    assert_eq!(n_plain, n_traced, "node state must not depend on tracing");
    assert_eq!(
        b_plain, b_traced,
        "snapshot bytes must not depend on tracing"
    );
}

#[test]
fn trace_stream_matches_engine_statistics() {
    let tracer = Tracer::ring(65_536);
    let (stats, _, _) = run(Some(&tracer));
    let events = tracer.events();
    let count = |name: &str| {
        events
            .iter()
            .filter(|e| e.kind == TraceKind::Event && e.name == name)
            .count()
    };

    // Channel-shaped events, identical to the synchronous harness:
    // one msg_send per accepted copy, one msg_drop(reason=loss) per
    // lost offer, one msg_deliver per (round, recipient) carrying the
    // inbox size.
    assert_eq!(count("msg_send"), stats.sent);
    let losses = events
        .iter()
        .filter(|e| e.kind == TraceKind::Event && e.name == "msg_drop")
        .filter(|e| {
            matches!(
                e.fields.last(),
                Some(&("reason", TraceValue::Str(ref r))) if r == "loss"
            )
        })
        .count();
    assert_eq!(losses, stats.dropped_loss);
    let delivered: u64 = events
        .iter()
        .filter(|e| e.kind == TraceKind::Event && e.name == "msg_deliver")
        .map(|e| match e.fields[1] {
            ("count", TraceValue::U64(c)) => c,
            ref f => panic!("unexpected msg_deliver field {f:?}"),
        })
        .sum();
    assert_eq!(delivered as usize, stats.delivered);
    assert_eq!(count("robot_crash"), stats.crashes);
    assert_eq!(count("robot_recover"), stats.recoveries);
}

#[test]
fn engine_emits_heap_depth_histogram_and_pop_counter() {
    let tracer = Tracer::ring(65_536);
    let (stats, _, _) = run(Some(&tracer));
    assert!(tracer.counter("event_pop") > 0, "pops must be counted");
    let hist = tracer.hist("heap_depth").expect("heap_depth samples");
    assert!(hist.count > 0, "one sample per executed round");
    assert!(
        hist.count <= stats.rounds as u64,
        "never more samples than rounds ({} > {})",
        hist.count,
        stats.rounds
    );
    assert!(hist.max >= hist.min && hist.min >= 0.0);
}

#[test]
fn checkpoint_spans_are_recorded() {
    let tracer = Tracer::ring(65_536);
    let (_, _, bytes) = run(Some(&tracer));
    let has_span = |name: &str| {
        tracer
            .events()
            .iter()
            .any(|e| e.kind == TraceKind::SpanEnd && e.name == name)
    };
    assert!(has_span("ckpt_write"), "save() must open a ckpt_write span");
    assert_eq!(tracer.counter("ckpt_bytes"), bytes.len() as u64);

    let topology = ExplicitTopology::new(lattice_adjacency(4, 3)).expect("topology");
    let restored =
        EventSim::<RobustFloodNode, _>::restore_traced(&bytes, topology, &tracer).expect("restore");
    assert!(
        has_span("ckpt_restore"),
        "restore_traced() must open a ckpt_restore span"
    );
    assert_eq!(restored.save(), bytes, "restored state is byte-identical");
}
