//! Checkpoint/restore guarantees (satellite 3).
//!
//! * Resumability: `run(t1); save; restore; run(t2)` is byte-identical
//!   to `run(t1 + t2)` uninterrupted, under a nonzero fault plan —
//!   checked as a property over split points and seeds.
//! * Robustness: corrupted, truncated, or alien snapshot bytes surface
//!   as typed [`CkptError`]s, never panics.

use anr_distsim::{DelayModel, FaultPlan};
use anr_eventsim::{CkptError, EventSim, ExplicitTopology, CKPT_MAGIC};
use anr_geom::Point;
use anr_netgraph::robust::{RetransmitConfig, RobustFloodNode};
use anr_netgraph::UnitDiskGraph;
use proptest::prelude::*;

fn lattice_adjacency(cols: usize, rows: usize) -> Vec<Vec<usize>> {
    let pts: Vec<Point> = (0..cols * rows)
        .map(|i| Point::new((i % cols) as f64 * 55.0, (i / cols) as f64 * 55.0))
        .collect();
    UnitDiskGraph::new(&pts, 80.0).adjacency().to_vec()
}

fn nasty_plan(seed: u64) -> FaultPlan {
    FaultPlan::reliable(seed)
        .with_loss(0.25)
        .with_delay(DelayModel::Uniform { min: 0, max: 2 })
        .with_duplication(0.1)
        .with_crash(5, 3)
        .with_recovery(14, 3)
}

fn flood_sim(
    adjacency: &[Vec<usize>],
    plan: FaultPlan,
) -> EventSim<RobustFloodNode, ExplicitTopology> {
    let n = adjacency.len();
    let nodes: Vec<RobustFloodNode> = (0..n)
        .map(|i| {
            RobustFloodNode::new(
                i,
                i as f64 * 1.25,
                n,
                adjacency[i].clone(),
                RetransmitConfig::default(),
            )
        })
        .collect();
    let topology = ExplicitTopology::new(adjacency.to_vec()).expect("topology");
    EventSim::new(nodes, topology, plan).expect("construction")
}

/// A snapshot of a freshly restored simulator is identical to the
/// snapshot it was restored from (save ∘ restore = id on bytes).
#[test]
fn restore_then_save_is_identity() {
    let adjacency = lattice_adjacency(4, 3);
    let mut sim = flood_sim(&adjacency, nasty_plan(9));
    sim.run_rounds(7).expect("run");
    let bytes = sim.save();
    let topology = ExplicitTopology::new(adjacency).expect("topology");
    let restored = EventSim::<RobustFloodNode, _>::restore(&bytes, topology).expect("restore");
    assert_eq!(bytes, restored.save());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline property: splitting a run at any round boundary and
    /// resuming from a snapshot reproduces the uninterrupted run
    /// byte-for-byte, including the fault RNG stream mid-plan.
    #[test]
    fn split_run_is_byte_identical_to_uninterrupted(
        t1 in 0usize..25,
        t2 in 0usize..25,
        seed in 0u64..500,
    ) {
        let adjacency = lattice_adjacency(4, 3);
        let plan = nasty_plan(seed);

        let mut split = flood_sim(&adjacency, plan.clone());
        split.run_rounds(t1).expect("first leg");
        let snapshot = split.save();
        let topology = ExplicitTopology::new(adjacency.clone()).expect("topology");
        let mut resumed =
            EventSim::<RobustFloodNode, _>::restore(&snapshot, topology).expect("restore");
        resumed.run_rounds(t2).expect("second leg");

        let mut whole = flood_sim(&adjacency, plan);
        whole.run_rounds(t1 + t2).expect("uninterrupted");

        prop_assert_eq!(resumed.save(), whole.save());
        prop_assert_eq!(resumed.nodes(), whole.nodes());
        prop_assert_eq!(resumed.stats(), whole.stats());
    }

    /// Any single flipped body byte is caught by the checksum; flips in
    /// the magic line are caught by the format tag. Never a panic.
    #[test]
    fn single_byte_corruption_is_a_typed_error(pos_seed in 0usize..10_000) {
        let adjacency = lattice_adjacency(3, 3);
        let mut sim = flood_sim(&adjacency, nasty_plan(3));
        sim.run_rounds(6).expect("run");
        let mut bytes = sim.save();
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= 0x01;
        let topology = ExplicitTopology::new(adjacency).expect("topology");
        let err = EventSim::<RobustFloodNode, _>::restore(&bytes, topology)
            .expect_err("corruption must not restore");
        if pos <= CKPT_MAGIC.len() {
            prop_assert_eq!(err, CkptError::BadMagic);
        } else {
            prop_assert!(
                matches!(err, CkptError::ChecksumMismatch { .. }),
                "flip at {} gave {:?}", pos, err
            );
        }
    }
}

/// Every possible truncation of a valid snapshot yields a typed error
/// without panicking — the full prefix sweep, not a sample.
#[test]
fn every_truncation_is_a_typed_error() {
    let adjacency = lattice_adjacency(3, 3);
    let mut sim = flood_sim(&adjacency, nasty_plan(5));
    sim.run_rounds(6).expect("run");
    let bytes = sim.save();
    for len in 0..bytes.len() {
        let topology = ExplicitTopology::new(adjacency.clone()).expect("topology");
        let err = EventSim::<RobustFloodNode, _>::restore(&bytes[..len], topology)
            .expect_err("truncation must not restore");
        if len < CKPT_MAGIC.len() + 1 + 8 {
            assert_eq!(err, CkptError::Truncated, "prefix of {len} bytes");
        } else {
            // The 8-byte tail is now mid-body data, so the checksum
            // (almost surely) fails; a colliding prefix would fall
            // through to a codec/trailing-byte error, still typed.
            assert!(
                matches!(
                    err,
                    CkptError::ChecksumMismatch { .. }
                        | CkptError::Codec(_)
                        | CkptError::TrailingBytes { .. }
                        | CkptError::Inconsistent { .. }
                ),
                "prefix of {len} bytes gave {err:?}"
            );
        }
    }
}

#[test]
fn alien_input_is_bad_magic() {
    let topology = ExplicitTopology::new(vec![vec![1], vec![0]]).expect("topology");
    let err = EventSim::<RobustFloodNode, _>::restore(b"not a snapshot at all, sorry", topology)
        .expect_err("alien input");
    assert_eq!(err, CkptError::BadMagic);
}

#[test]
fn wrong_topology_size_is_reported() {
    let adjacency = lattice_adjacency(3, 3);
    let mut sim = flood_sim(&adjacency, FaultPlan::reliable(1));
    sim.run_rounds(2).expect("run");
    let bytes = sim.save();
    let small = ExplicitTopology::new(vec![vec![1], vec![0]]).expect("topology");
    let err = EventSim::<RobustFloodNode, _>::restore(&bytes, small).expect_err("size mismatch");
    assert_eq!(
        err,
        CkptError::TopologyMismatch {
            snapshot: 9,
            topology: 2
        }
    );
}

/// Appending bytes to the body (with a recomputed checksum, so the
/// checksum gate passes) is still rejected: the decoder insists the
/// body is fully consumed.
#[test]
fn trailing_bytes_are_rejected() {
    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
    let adjacency = lattice_adjacency(3, 3);
    let mut sim = flood_sim(&adjacency, nasty_plan(8));
    sim.run_rounds(4).expect("run");
    let bytes = sim.save();
    let mut forged = bytes[..bytes.len() - 8].to_vec();
    forged.extend_from_slice(&[0xAB, 0xCD, 0xEF]);
    let checksum = fnv1a(&forged);
    forged.extend_from_slice(&checksum.to_le_bytes());
    let topology = ExplicitTopology::new(adjacency).expect("topology");
    let err = EventSim::<RobustFloodNode, _>::restore(&forged, topology)
        .expect_err("padded body must be rejected");
    assert_eq!(err, CkptError::TrailingBytes { extra: 3 });
}

/// A snapshot taken mid-churn (after the crash, before the recovery)
/// restores the crash flag and replays the recovery on schedule.
#[test]
fn churn_state_survives_the_checkpoint() {
    let adjacency = lattice_adjacency(4, 3);
    let plan = nasty_plan(17);
    let mut sim = flood_sim(&adjacency, plan);
    sim.run_rounds(8).expect("run past the crash");
    assert!(sim.is_crashed(3), "robot 3 crashed at round 5");
    let bytes = sim.save();
    let topology = ExplicitTopology::new(adjacency).expect("topology");
    let mut resumed = EventSim::<RobustFloodNode, _>::restore(&bytes, topology).expect("restore");
    assert!(resumed.is_crashed(3));
    resumed.run_rounds(10).expect("run past the recovery");
    assert!(!resumed.is_crashed(3), "robot 3 recovered at round 14");
}
