//! Event engine ≡ synchronous harness, pinned bit-for-bit.
//!
//! Every test drives [`anr_eventsim::EventSim`] and
//! [`anr_distsim::FaultySimulator`] with identical nodes, topology, and
//! fault plan, then compares results, node states, and full
//! [`FaultStats`] — the equivalence the event engine's determinism
//! rules are designed to guarantee.

use anr_distsim::{DelayModel, FaultPlan, FaultySimulator, SimError};
use anr_eventsim::{
    run_event_boundary_loop, run_event_flood_sum, run_event_hop_field, EventSim, ExplicitTopology,
    GridTopology,
};
use anr_geom::Point;
use anr_netgraph::robust::{
    run_robust_boundary_loop, run_robust_flood_sum, run_robust_hop_field, RetransmitConfig,
    RobustFloodNode,
};
use anr_netgraph::UnitDiskGraph;

fn lattice(cols: usize, rows: usize, pitch: f64) -> Vec<Point> {
    (0..cols * rows)
        .map(|i| Point::new((i % cols) as f64 * pitch, (i / cols) as f64 * pitch))
        .collect()
}

fn lattice_adjacency(cols: usize, rows: usize) -> Vec<Vec<usize>> {
    let pts = lattice(cols, rows, 55.0);
    UnitDiskGraph::new(&pts, 80.0).adjacency().to_vec()
}

fn nasty_plan(seed: u64) -> FaultPlan {
    FaultPlan::reliable(seed)
        .with_loss(0.3)
        .with_delay(DelayModel::Uniform { min: 0, max: 2 })
        .with_duplication(0.1)
}

#[test]
fn flood_sum_matches_sync_under_reliable_plan() {
    let adjacency = lattice_adjacency(6, 4);
    let values: Vec<f64> = (0..adjacency.len()).map(|i| i as f64 * 1.5 + 1.0).collect();
    let cfg = RetransmitConfig::default();
    let sync = run_robust_flood_sum(&values, &adjacency, FaultPlan::reliable(7), cfg, 400)
        .expect("sync converges");
    let event = run_event_flood_sum(&values, &adjacency, FaultPlan::reliable(7), cfg, 400)
        .expect("event converges");
    assert_eq!(sync.results, event.results);
    assert_eq!(sync.stats, event.stats);
}

#[test]
fn flood_sum_matches_sync_under_nasty_plan_across_seeds() {
    let adjacency = lattice_adjacency(5, 4);
    let values: Vec<f64> = (0..adjacency.len())
        .map(|i| (i * i) as f64 * 0.25)
        .collect();
    let cfg = RetransmitConfig::default();
    for seed in [1u64, 2, 3, 42, 99] {
        let sync = run_robust_flood_sum(&values, &adjacency, nasty_plan(seed), cfg, 2000)
            .unwrap_or_else(|e| panic!("sync seed {seed}: {e}"));
        let event = run_event_flood_sum(&values, &adjacency, nasty_plan(seed), cfg, 2000)
            .unwrap_or_else(|e| panic!("event seed {seed}: {e}"));
        assert_eq!(sync.results, event.results, "results, seed {seed}");
        assert_eq!(sync.stats, event.stats, "stats, seed {seed}");
    }
}

#[test]
fn hop_field_matches_sync_under_churn() {
    let adjacency = lattice_adjacency(6, 3);
    let n = adjacency.len();
    let mut sources = vec![false; n];
    sources[0] = true;
    sources[n - 1] = true;
    for seed in [5u64, 17] {
        let plan = FaultPlan::reliable(seed)
            .with_loss(0.15)
            .with_crash(3, 7)
            .with_recovery(12, 7)
            .with_crash(0, 4)
            .with_recovery(9, 4);
        let sync = run_robust_hop_field(
            &sources,
            &adjacency,
            plan.clone(),
            RetransmitConfig::default(),
            2000,
        )
        .unwrap_or_else(|e| panic!("sync seed {seed}: {e}"));
        let event = run_event_hop_field(
            &sources,
            &adjacency,
            plan,
            RetransmitConfig::default(),
            2000,
        )
        .unwrap_or_else(|e| panic!("event seed {seed}: {e}"));
        assert_eq!(sync.results, event.results, "results, seed {seed}");
        assert_eq!(sync.stats, event.stats, "stats, seed {seed}");
    }
}

#[test]
fn boundary_loop_matches_sync_under_loss() {
    let ids: Vec<usize> = vec![9, 4, 11, 2, 7, 5, 13, 8];
    for seed in [3u64, 21] {
        let plan = FaultPlan::reliable(seed).with_loss(0.2);
        let sync = run_robust_boundary_loop(&ids, plan.clone(), RetransmitConfig::default(), 4000)
            .unwrap_or_else(|e| panic!("sync seed {seed}: {e}"));
        let event = run_event_boundary_loop(&ids, plan, RetransmitConfig::default(), 4000)
            .unwrap_or_else(|e| panic!("event seed {seed}: {e}"));
        assert_eq!(sync.results, event.results, "results, seed {seed}");
        assert_eq!(sync.stats, event.stats, "stats, seed {seed}");
    }
}

/// Step-level equivalence: after every `run_rounds` increment the two
/// engines agree on node states (field for field) and statistics.
#[test]
fn stepwise_states_match_sync() {
    let adjacency = lattice_adjacency(4, 3);
    let n = adjacency.len();
    let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let mk_nodes = || -> Vec<RobustFloodNode> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                RobustFloodNode::new(i, v, n, adjacency[i].clone(), RetransmitConfig::default())
            })
            .collect()
    };
    let plan = nasty_plan(11).with_crash(4, 2).with_recovery(10, 2);

    let mut sync = FaultySimulator::new(mk_nodes(), adjacency.clone(), plan.clone())
        .expect("sync construction");
    let topology = ExplicitTopology::new(adjacency.clone()).expect("topology");
    let mut event = EventSim::new(mk_nodes(), topology, plan).expect("event construction");

    for step in 0..40 {
        let s_stats = sync.run_rounds(1).expect("sync step");
        let e_stats = event.run_rounds(1).expect("event step");
        assert_eq!(s_stats, e_stats, "stats after step {step}");
        assert_eq!(sync.nodes(), event.nodes(), "nodes after step {step}");
    }
}

/// The lazy grid topology and a prebuilt adjacency drive identical
/// runs, and the lazy one resolves only the rows it touches at most
/// once each.
#[test]
fn grid_topology_matches_explicit() {
    let pts = lattice(6, 4, 55.0);
    let adjacency = UnitDiskGraph::new(&pts, 80.0).adjacency().to_vec();
    let n = pts.len();
    let values: Vec<f64> = (0..n).map(|i| i as f64 * 2.0).collect();
    let mk_nodes = |adj: &[Vec<usize>]| -> Vec<RobustFloodNode> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                RobustFloodNode::new(i, v, n, adj[i].clone(), RetransmitConfig::default())
            })
            .collect()
    };
    let plan = nasty_plan(23);

    let topo_a = ExplicitTopology::new(adjacency.clone()).expect("topology");
    let mut sim_a = EventSim::new(mk_nodes(&adjacency), topo_a, plan.clone()).expect("explicit");
    let stats_a = sim_a
        .run_until(2000, |nodes| nodes.iter().all(RobustFloodNode::is_settled))
        .expect("explicit run");

    let topo_b = GridTopology::new(&pts, 80.0);
    let mut sim_b = EventSim::new(mk_nodes(&adjacency), topo_b, plan).expect("grid");
    let stats_b = sim_b
        .run_until(2000, |nodes| nodes.iter().all(RobustFloodNode::is_settled))
        .expect("grid run");

    assert_eq!(stats_a, stats_b);
    assert_eq!(sim_a.nodes(), sim_b.nodes());
    assert!(sim_b.topology_mut().resolved_rows() <= n);
}

/// Satellite 1: `NotQuiescent` parity. With a 5-round fixed delay and a
/// 2-round quiet budget, both engines must fail with the same cap and
/// the same sorted pending-recipient list.
#[test]
fn not_quiescent_reports_match_sync() {
    let adjacency = lattice_adjacency(3, 3);
    let n = adjacency.len();
    let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let plan = FaultPlan::reliable(31).with_delay(DelayModel::Fixed(5));
    let cfg = RetransmitConfig::default();
    let mk_nodes = || -> Vec<RobustFloodNode> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| RobustFloodNode::new(i, v, n, adjacency[i].clone(), cfg))
            .collect()
    };

    let mut sync = FaultySimulator::new(mk_nodes(), adjacency.clone(), plan.clone())
        .expect("sync construction");
    let sync_err = sync.run_until_quiet(2).expect_err("sync must time out");

    let topology = ExplicitTopology::new(adjacency.clone()).expect("topology");
    let mut event = EventSim::new(mk_nodes(), topology, plan).expect("event construction");
    let event_err = event.run_until_quiet(2).expect_err("event must time out");

    match (&sync_err, &event_err) {
        (
            SimError::NotQuiescent {
                max_rounds: sm,
                pending: sp,
            },
            SimError::NotQuiescent {
                max_rounds: em,
                pending: ep,
            },
        ) => {
            assert_eq!(sm, em, "round caps");
            assert_eq!(sp, ep, "pending recipients");
            assert!(!sp.is_empty(), "delayed sends must still be pending");
        }
        other => panic!("expected NotQuiescent from both engines, got {other:?}"),
    }
    // After the timeout both engines agree on elapsed rounds too.
    assert_eq!(sync.stats(), event.stats());
}

/// `run_until` uses an absolute round cap in both engines; a satisfied
/// predicate returns identical stats even when the event engine skipped
/// empty rounds to get there.
#[test]
fn run_until_cap_is_absolute_in_both_engines() {
    let adjacency = lattice_adjacency(3, 2);
    let n = adjacency.len();
    let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let cfg = RetransmitConfig::default();
    let plan = FaultPlan::reliable(13);
    let mk_nodes = || -> Vec<RobustFloodNode> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| RobustFloodNode::new(i, v, n, adjacency[i].clone(), cfg))
            .collect()
    };

    let mut sync = FaultySimulator::new(mk_nodes(), adjacency.clone(), plan.clone()).expect("sync");
    // Burn some rounds first so the cap is tested mid-run.
    sync.run_rounds(3).expect("sync warmup");
    let sync_err = sync
        .run_until(2, |_| false)
        .expect_err("cap already exceeded");

    let topology = ExplicitTopology::new(adjacency.clone()).expect("topology");
    let mut event = EventSim::new(mk_nodes(), topology, plan).expect("event");
    event.run_rounds(3).expect("event warmup");
    let event_err = event
        .run_until(2, |_| false)
        .expect_err("cap already exceeded");

    assert_eq!(format!("{sync_err}"), format!("{event_err}"));
}
