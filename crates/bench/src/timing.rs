//! Wall-clock trajectory of the marching pipeline.
//!
//! [`run_pipeline_bench`] times every stage of the pipeline —
//! mesh → harmonic map → rotation search → full march → guarded
//! Lloyd — on the seed scenarios, pitting the PCG harmonic solver
//! against the Gauss–Seidel reference, and times the fault sweep
//! serial versus parallel. The result is a deterministic-schema JSON
//! document (`BENCH_pipeline.json` at the repo root); the numbers, of
//! course, depend on the machine, so the core count rides along.

use crate::BenchError;
use anr_coverage::{GridPartition, LloydConfig};
use anr_harmonic::{fill_holes, harmonic_map_to_disk, DiskOverlay, HarmonicConfig, Solver};
use anr_march::{march_traced, run_fault_sweep, MarchConfig, MarchProblem, Method, SweepConfig};
use anr_mesh::FoiMesher;
use anr_netgraph::{extract_triangulation, UnitDiskGraph};
use anr_scenarios::{build_scenario, ScenarioParams};
use anr_trace::Tracer;

/// What to bench and how hard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchOptions {
    /// Smoke mode: scenario 1 only, fewer robots, one repeat — fast
    /// enough for CI.
    pub smoke: bool,
    /// Timed repetitions per stage; the median is reported.
    pub repeats: usize,
}

/// One timed stage of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTiming {
    /// Stage name (`"mesh"`, `"harmonic_pcg"`, ...).
    pub stage: &'static str,
    /// Median wall time over the repeats, milliseconds.
    pub median_ms: f64,
}

/// PCG-versus-Gauss-Seidel comparison on one scenario's target mesh.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverComparison {
    /// Median PCG wall time, milliseconds.
    pub pcg_ms: f64,
    /// Median Gauss–Seidel wall time, milliseconds.
    pub gs_ms: f64,
    /// `gs_ms / pcg_ms`.
    pub speedup: f64,
    /// PCG iterations to converge.
    pub pcg_iterations: usize,
    /// Gauss–Seidel sweeps to converge.
    pub gs_iterations: usize,
    /// Max per-vertex distance between the two disk embeddings.
    pub max_position_diff: f64,
}

/// Everything measured on one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioTimings {
    /// Scenario id (1–7).
    pub id: u8,
    /// Robots in the deployment.
    pub robots: usize,
    /// Vertices of the hole-filled target-FoI mesh the harmonic solves
    /// run on.
    pub mesh_vertices: usize,
    /// The per-stage medians.
    pub stages: Vec<StageTiming>,
    /// Per-stage wall-time medians of the pipeline's **own** trace
    /// spans (triangulate, harmonic maps, rotation search, repair,
    /// trajectories, Lloyd, metrics), collected from the same runs as
    /// the `march` stage timing.
    pub march_stages: Vec<StageTiming>,
    /// The harmonic-solver duel.
    pub harmonic: SolverComparison,
}

/// Serial-versus-parallel fault-sweep timing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSweepTiming {
    /// Robots in the swept deployment.
    pub robots: usize,
    /// Grid cells per protocol.
    pub cells: usize,
    /// Median wall time with `workers = 1`, milliseconds.
    pub serial_ms: f64,
    /// Median wall time with auto workers, milliseconds.
    pub parallel_ms: f64,
    /// The auto worker count used.
    pub workers: usize,
    /// Did the two runs produce byte-identical JSON?
    pub byte_identical: bool,
}

/// The full benchmark trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineBenchReport {
    /// Logical cores of the machine the numbers were taken on.
    pub cores: usize,
    /// Repeats per stage.
    pub repeats: usize,
    /// Was this a smoke run?
    pub smoke: bool,
    /// One entry per benched scenario.
    pub scenarios: Vec<ScenarioTimings>,
    /// The fault-sweep duel.
    pub fault_sweep: FaultSweepTiming,
}

/// Median of a set of timings, `0.0` when empty.
fn median_of(mut times: Vec<f64>) -> f64 {
    if times.is_empty() {
        return 0.0;
    }
    times.sort_by(|a, b| a.total_cmp(b));
    let mid = times.len() / 2;
    if times.len() % 2 == 1 {
        times[mid]
    } else {
        (times[mid - 1] + times[mid]) / 2.0
    }
}

/// Medians the wall time of `f` over `repeats` runs, in milliseconds.
/// Each run is timed through a wall-clock tracer span — the same clock
/// the pipeline's own stage spans use — rather than an ad-hoc timer.
/// The closure's result is returned (from the last run) so the timed
/// work cannot be optimized away.
pub(crate) fn median_ms<T>(
    repeats: usize,
    mut f: impl FnMut() -> T,
) -> Result<(f64, T), BenchError> {
    let tracer = Tracer::wall(2 * repeats);
    let mut last = None;
    for _ in 0..repeats {
        let _rep = tracer.span("bench_rep");
        last = Some(f());
    }
    let Some(last) = last else {
        return Err(BenchError::ZeroRepeats);
    };
    let times = tracer.span_durations_ms("bench_rep");
    // With anr-trace's `off` feature the spans vanish and the medians
    // degrade to 0.0; with tracing on, every repeat leaves one span.
    assert!(!tracer.is_enabled() || times.len() == repeats);
    Ok((median_of(times), last))
}

fn bench_scenario(
    id: u8,
    robots: usize,
    separation: f64,
    repeats: usize,
) -> Result<ScenarioTimings, BenchError> {
    let s = build_scenario(
        id,
        &ScenarioParams {
            robots,
            separation_ranges: separation,
            ..Default::default()
        },
    )?;
    let problem = MarchProblem::with_lattice_deployment(s.m1, s.m2, s.robots, s.range)?;
    let n = problem.num_robots();
    let config = MarchConfig::default();
    let spacing = config.resolve_mesh_spacing(problem.m2.area(), n);

    // Stage 1: grid-mesh the target FoI and fill its holes.
    let (mesh_ms, filled2) = median_ms(repeats, || {
        let foi2 = FoiMesher::new(spacing).mesh(&problem.m2)?;
        fill_holes(foi2.mesh()).map_err(anr_march::MarchError::from)
    })?;
    let filled2 = filled2?;

    // Stage 2: the harmonic duel on that mesh — same system, two
    // solvers.
    let pcg_cfg = HarmonicConfig {
        solver: Solver::Pcg,
        ..HarmonicConfig::default()
    };
    let gs_cfg = HarmonicConfig {
        solver: Solver::GaussSeidel,
        ..HarmonicConfig::default()
    };
    let (pcg_ms, pcg_map) = median_ms(repeats, || harmonic_map_to_disk(filled2.mesh(), &pcg_cfg))?;
    let (gs_ms, gs_map) = median_ms(repeats, || harmonic_map_to_disk(filled2.mesh(), &gs_cfg))?;
    let pcg_map = pcg_map.map_err(anr_march::MarchError::from)?;
    let gs_map = gs_map.map_err(anr_march::MarchError::from)?;
    let max_position_diff = pcg_map
        .positions()
        .iter()
        .zip(gs_map.positions())
        .map(|(a, b)| a.distance(*b))
        .fold(0.0f64, f64::max);

    // Stage 3: rotation search over the composed disk maps (method (a)
    // objective). The deployment-side map is prepared untimed.
    let t_mesh = extract_triangulation(&problem.positions, problem.range)
        .map_err(anr_march::MarchError::from)?;
    let filled_t = fill_holes(&t_mesh).map_err(anr_march::MarchError::from)?;
    let disk_t =
        harmonic_map_to_disk(filled_t.mesh(), &pcg_cfg).map_err(anr_march::MarchError::from)?;
    let robot_disk: Vec<_> = (0..n).map(|v| disk_t.position(v)).collect();
    let overlay = DiskOverlay::new(
        filled2.mesh(),
        pcg_map.positions(),
        filled2.virtual_vertices(),
    );
    let links = UnitDiskGraph::new(&problem.positions, problem.range).links();
    let (rotation_ms, _) = median_ms(repeats, || {
        config.rotation.maximize(|theta| {
            let q = overlay.map_all(&robot_disk, theta);
            if links.is_empty() {
                return 1.0;
            }
            links
                .iter()
                .filter(|&&(i, j)| q[i].position.distance(q[j].position) <= problem.range)
                .count() as f64
                / links.len() as f64
        })
    })?;

    // Stage 4: the full pipeline, end to end. The same runs feed the
    // per-stage view: march emits a wall-clocked span for every
    // pipeline stage, so the stage medians come for free.
    let stage_tracer = Tracer::wall(1 << 17);
    let (march_ms, outcome) = median_ms(repeats, || {
        march_traced(&problem, Method::MaxStableLinks, &config, &stage_tracer)
    })?;
    let outcome = outcome?;
    let march_stages: Vec<StageTiming> = [
        "triangulate",
        "harmonic_m1",
        "harmonic_m2",
        "rotation",
        "repair",
        "trajectories",
        "lloyd",
        "metrics",
    ]
    .iter()
    .map(|&stage| StageTiming {
        stage,
        median_ms: median_of(stage_tracer.span_durations_ms(stage)),
    })
    .collect();

    // Stage 5: the guarded Lloyd refinement from the mapped positions.
    let partition = GridPartition::new(&problem.m2, spacing * 0.2);
    let lloyd_cfg = LloydConfig {
        record_history: true,
        ..config.lloyd
    };
    let (lloyd_ms, _) = median_ms(repeats, || {
        anr_coverage::run_lloyd_guarded(
            &outcome.mapped,
            &partition,
            &config.density,
            &lloyd_cfg,
            problem.range,
        )
    })?;

    Ok(ScenarioTimings {
        id,
        robots: n,
        mesh_vertices: filled2.mesh().num_vertices(),
        stages: vec![
            StageTiming {
                stage: "mesh",
                median_ms: mesh_ms,
            },
            StageTiming {
                stage: "harmonic_pcg",
                median_ms: pcg_ms,
            },
            StageTiming {
                stage: "harmonic_gs",
                median_ms: gs_ms,
            },
            StageTiming {
                stage: "rotation",
                median_ms: rotation_ms,
            },
            StageTiming {
                stage: "march",
                median_ms: march_ms,
            },
            StageTiming {
                stage: "lloyd",
                median_ms: lloyd_ms,
            },
        ],
        march_stages,
        harmonic: SolverComparison {
            pcg_ms,
            gs_ms,
            speedup: if pcg_ms > 0.0 { gs_ms / pcg_ms } else { 0.0 },
            pcg_iterations: pcg_map.iterations(),
            gs_iterations: gs_map.iterations(),
            max_position_diff,
        },
    })
}

fn bench_fault_sweep(
    robots: usize,
    smoke: bool,
    repeats: usize,
) -> Result<FaultSweepTiming, BenchError> {
    let s = build_scenario(
        1,
        &ScenarioParams {
            robots,
            separation_ranges: 10.0,
            ..Default::default()
        },
    )?;
    let problem = MarchProblem::with_lattice_deployment(s.m1, s.m2, s.robots, s.range)?;
    let base = if smoke {
        SweepConfig {
            loss_rates: vec![0.0, 0.1],
            crash_counts: vec![0, 1],
            max_rounds: 2000,
            ..Default::default()
        }
    } else {
        SweepConfig::default()
    };
    let cells = base.loss_rates.len() * base.crash_counts.len();
    let workers = anr_par::default_workers();
    let serial_cfg = SweepConfig {
        workers: 1,
        ..base.clone()
    };
    let parallel_cfg = SweepConfig { workers, ..base };
    let (serial_ms, serial) = median_ms(repeats, || {
        run_fault_sweep(&problem.positions, problem.range, &serial_cfg)
    })?;
    let (parallel_ms, parallel) = median_ms(repeats, || {
        run_fault_sweep(&problem.positions, problem.range, &parallel_cfg)
    })?;
    let byte_identical = serial?.to_json() == parallel?.to_json();
    Ok(FaultSweepTiming {
        robots: problem.num_robots(),
        cells,
        serial_ms,
        parallel_ms,
        workers,
        byte_identical,
    })
}

/// Runs the full pipeline benchmark.
///
/// # Errors
///
/// Propagates scenario construction and pipeline failures.
pub fn run_pipeline_bench(opts: &BenchOptions) -> Result<PipelineBenchReport, BenchError> {
    // The scenario FoIs have the paper's fixed areas, so the robot count
    // can't drop below the paper's 144 even in smoke mode — fewer robots
    // make the deployment too sparse to triangulate. Smoke trims
    // scenarios and repeats instead. The full run deploys a denser
    // 1296-robot swarm (mesh spacing tracks robot pitch, so the
    // harmonic system grows with the swarm): at ~400 vertices both
    // solvers finish in well under a millisecond and constant factors
    // dominate; at ~3400 the O(n) vs O(√n) iteration counts are what
    // you measure.
    let (ids, robots, separation): (&[u8], usize, f64) = if opts.smoke {
        (&[1], 144, 10.0)
    } else {
        (&[1, 2, 3, 4, 5, 6, 7], 1296, 10.0)
    };
    let mut scenarios = Vec::new();
    for &id in ids {
        scenarios.push(bench_scenario(id, robots, separation, opts.repeats)?);
    }
    let fault_sweep = bench_fault_sweep(64, opts.smoke, opts.repeats)?;
    Ok(PipelineBenchReport {
        cores: anr_par::default_workers(),
        repeats: opts.repeats,
        smoke: opts.smoke,
        scenarios,
        fault_sweep,
    })
}

fn json_ms(x: f64) -> String {
    format!("{x:.3}")
}

impl PipelineBenchReport {
    /// Serializes the report as a self-contained JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"anr-bench-pipeline/2\",\n");
        s.push_str(&format!("  \"cores\": {},\n", self.cores));
        s.push_str(&format!("  \"repeats\": {},\n", self.repeats));
        s.push_str(&format!("  \"smoke\": {},\n", self.smoke));
        s.push_str("  \"scenarios\": [\n");
        for (si, sc) in self.scenarios.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"id\": {},\n", sc.id));
            s.push_str(&format!("      \"robots\": {},\n", sc.robots));
            s.push_str(&format!("      \"mesh_vertices\": {},\n", sc.mesh_vertices));
            s.push_str("      \"stages\": [\n");
            for (i, st) in sc.stages.iter().enumerate() {
                s.push_str(&format!(
                    "        {{\"stage\": \"{}\", \"median_ms\": {}}}{}\n",
                    st.stage,
                    json_ms(st.median_ms),
                    if i + 1 < sc.stages.len() { "," } else { "" },
                ));
            }
            s.push_str("      ],\n");
            s.push_str("      \"march_stages\": [\n");
            for (i, st) in sc.march_stages.iter().enumerate() {
                s.push_str(&format!(
                    "        {{\"stage\": \"{}\", \"median_ms\": {}}}{}\n",
                    st.stage,
                    json_ms(st.median_ms),
                    if i + 1 < sc.march_stages.len() {
                        ","
                    } else {
                        ""
                    },
                ));
            }
            s.push_str("      ],\n");
            let h = &sc.harmonic;
            s.push_str(&format!(
                "      \"harmonic\": {{\"pcg_ms\": {}, \"gs_ms\": {}, \"speedup\": {:.2}, \
                 \"pcg_iterations\": {}, \"gs_iterations\": {}, \"max_position_diff\": {:.3e}}}\n",
                json_ms(h.pcg_ms),
                json_ms(h.gs_ms),
                h.speedup,
                h.pcg_iterations,
                h.gs_iterations,
                h.max_position_diff,
            ));
            s.push_str(&format!(
                "    }}{}\n",
                if si + 1 < self.scenarios.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ],\n");
        let fsw = &self.fault_sweep;
        s.push_str(&format!(
            "  \"fault_sweep\": {{\"robots\": {}, \"cells\": {}, \"serial_ms\": {}, \
             \"parallel_ms\": {}, \"workers\": {}, \"byte_identical\": {}}}\n",
            fsw.robots,
            fsw.cells,
            json_ms(fsw.serial_ms),
            json_ms(fsw.parallel_ms),
            fsw.workers,
            fsw.byte_identical,
        ));
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        let mut k = 0;
        let (m, last) = median_ms(3, || {
            k += 1;
            k
        })
        .unwrap();
        assert!(m >= 0.0);
        assert_eq!(last, 3);
    }

    #[test]
    fn smoke_bench_runs_and_serializes() {
        let report = run_pipeline_bench(&BenchOptions {
            smoke: true,
            repeats: 1,
        })
        .unwrap();
        assert_eq!(report.scenarios.len(), 1);
        assert!(report.fault_sweep.byte_identical);
        let sc = &report.scenarios[0];
        assert_eq!(sc.stages.len(), 6);
        assert_eq!(sc.march_stages.len(), 8);
        // Every pipeline stage span was seen and timed on this machine.
        for st in &sc.march_stages {
            assert!(st.median_ms > 0.0, "stage `{}` never timed", st.stage);
        }
        // Same linear system, two solvers: the embeddings agree tightly.
        assert!(
            sc.harmonic.max_position_diff < 1e-6,
            "diff {}",
            sc.harmonic.max_position_diff
        );
        let json = report.to_json();
        for key in [
            "\"schema\": \"anr-bench-pipeline/2\"",
            "\"stage\": \"harmonic_pcg\"",
            "\"stage\": \"lloyd\"",
            "\"march_stages\"",
            "\"stage\": \"triangulate\"",
            "\"stage\": \"trajectories\"",
            "\"speedup\"",
            "\"fault_sweep\"",
            "\"byte_identical\": true",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
