//! Wall-clock trajectory of the marching pipeline.
//!
//! [`run_pipeline_bench`] times every stage of the pipeline —
//! mesh → harmonic map → rotation search → full march → guarded
//! Lloyd — on the seed scenarios, pitting the PCG harmonic solver
//! against the Gauss–Seidel reference, and times the fault sweep
//! serial versus parallel. The result is a deterministic-schema JSON
//! document (`BENCH_pipeline.json` at the repo root); the numbers, of
//! course, depend on the machine, so the core count rides along.

use crate::BenchError;
use anr_coverage::{GridPartition, LloydConfig};
use anr_harmonic::{
    fill_holes, harmonic_map_to_disk, harmonic_map_to_disk_warm, DiskOverlay, HarmonicConfig,
    Solver,
};
use anr_march::{march_traced, run_fault_sweep, MarchConfig, MarchProblem, Method, SweepConfig};
use anr_mesh::FoiMesher;
use anr_netgraph::{extract_triangulation, UnitDiskGraph};
use anr_scenarios::{build_scenario, ScenarioParams};
use anr_trace::Tracer;

/// What to bench and how hard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchOptions {
    /// Smoke mode: scenario 1 only, fewer robots, one repeat — fast
    /// enough for CI.
    pub smoke: bool,
    /// Timed repetitions per stage; the median is reported.
    pub repeats: usize,
    /// Also run the 10⁴-robot scale tier (scenario 1, one repeat):
    /// a single full march at 10k robots, reported separately.
    pub scale_tier: bool,
}

/// One timed stage of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTiming {
    /// Stage name (`"mesh"`, `"harmonic_pcg"`, ...).
    pub stage: &'static str,
    /// Median wall time over the repeats, milliseconds.
    pub median_ms: f64,
}

/// PCG-versus-Gauss-Seidel comparison on one scenario's target mesh.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverComparison {
    /// Median PCG wall time, milliseconds.
    pub pcg_ms: f64,
    /// Median Gauss–Seidel wall time, milliseconds.
    pub gs_ms: f64,
    /// `gs_ms / pcg_ms`.
    pub speedup: f64,
    /// PCG iterations to converge.
    pub pcg_iterations: usize,
    /// Gauss–Seidel sweeps to converge.
    pub gs_iterations: usize,
    /// Max per-vertex distance between the two disk embeddings.
    pub max_position_diff: f64,
}

/// Cold-versus-warm PCG re-solve across one march step.
///
/// The robot triangulation one timeline row later is solved twice: from
/// scratch (interior seeded at the origin, as every pinned march path
/// does) and warm-started from the previous row's disk embedding via
/// [`harmonic_map_to_disk_warm`]. Both solvers stop on the residual of
/// the *current* iterate, so the warm solve converges in the iterations
/// the seed is still short of tolerance — the march paths stay cold for
/// byte-determinism, and this duel measures what a warm start would buy.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmStartComparison {
    /// Median cold re-solve wall time, milliseconds.
    pub cold_ms: f64,
    /// Median warm re-solve wall time, milliseconds.
    pub warm_ms: f64,
    /// `cold_ms / warm_ms`.
    pub speedup: f64,
    /// PCG iterations of the cold re-solve.
    pub cold_iterations: usize,
    /// PCG iterations of the warm re-solve.
    pub warm_iterations: usize,
    /// Max per-vertex distance between the cold and warm embeddings —
    /// they agree to solver tolerance, not bit-exactly.
    pub max_position_diff: f64,
}

/// Everything measured on one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioTimings {
    /// Scenario id (1–7).
    pub id: u8,
    /// Robots in the deployment.
    pub robots: usize,
    /// Vertices of the hole-filled target-FoI mesh the harmonic solves
    /// run on.
    pub mesh_vertices: usize,
    /// The per-stage medians.
    pub stages: Vec<StageTiming>,
    /// Per-stage wall-time medians of the pipeline's **own** trace
    /// spans (triangulate, harmonic maps, rotation search, repair,
    /// trajectories, Lloyd, metrics), collected from the same runs as
    /// the `march` stage timing.
    pub march_stages: Vec<StageTiming>,
    /// The harmonic-solver duel.
    pub harmonic: SolverComparison,
    /// The warm-start re-solve duel across one march step.
    pub warm_start: WarmStartComparison,
    /// Linear motion pieces the continuous audit decomposed the march
    /// timeline into.
    pub audit_pieces: usize,
    /// Connectivity checks (event-sweep intervals) the audit performed —
    /// the per-scenario audit event count.
    pub audit_checks: usize,
}

/// Serial-versus-parallel fault-sweep timing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSweepTiming {
    /// Robots in the swept deployment.
    pub robots: usize,
    /// Grid cells per protocol.
    pub cells: usize,
    /// Median wall time with `workers = 1`, milliseconds.
    pub serial_ms: f64,
    /// Median wall time with auto workers, milliseconds.
    pub parallel_ms: f64,
    /// The auto worker count used.
    pub workers: usize,
    /// Did the two runs produce byte-identical JSON?
    pub byte_identical: bool,
}

/// One full march at scale-tier size (10⁴ robots, one repeat).
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleTierTiming {
    /// Robots in the deployment.
    pub robots: usize,
    /// End-to-end march wall time, milliseconds (single run).
    pub march_ms: f64,
    /// Per-stage wall times from the pipeline's own trace spans.
    pub march_stages: Vec<StageTiming>,
    /// Timeline rows the metrics were evaluated on.
    pub timeline_rows: usize,
    /// Audit pieces of the march timeline.
    pub audit_pieces: usize,
    /// Audit connectivity checks (event count) of the march timeline.
    pub audit_checks: usize,
}

/// The full benchmark trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineBenchReport {
    /// Logical cores of the machine the numbers were taken on.
    pub cores: usize,
    /// Worker threads the parallel paths (audit, assignment, rotation,
    /// fault sweep) fan out over (`anr_par::default_workers()`).
    pub workers: usize,
    /// Repeats per stage.
    pub repeats: usize,
    /// Was this a smoke run?
    pub smoke: bool,
    /// One entry per benched scenario.
    pub scenarios: Vec<ScenarioTimings>,
    /// The fault-sweep duel.
    pub fault_sweep: FaultSweepTiming,
    /// The 10⁴-robot scale tier, when requested.
    pub scale: Option<ScaleTierTiming>,
}

/// Median of a set of timings, `0.0` when empty.
fn median_of(mut times: Vec<f64>) -> f64 {
    if times.is_empty() {
        return 0.0;
    }
    times.sort_by(|a, b| a.total_cmp(b));
    let mid = times.len() / 2;
    if times.len() % 2 == 1 {
        times[mid]
    } else {
        (times[mid - 1] + times[mid]) / 2.0
    }
}

/// Medians the wall time of `f` over `repeats` runs, in milliseconds.
/// Each run is timed through a wall-clock tracer span — the same clock
/// the pipeline's own stage spans use — rather than an ad-hoc timer.
/// The closure's result is returned (from the last run) so the timed
/// work cannot be optimized away.
pub(crate) fn median_ms<T>(
    repeats: usize,
    mut f: impl FnMut() -> T,
) -> Result<(f64, T), BenchError> {
    let tracer = Tracer::wall(2 * repeats);
    let mut last = None;
    for _ in 0..repeats {
        let _rep = tracer.span("bench_rep");
        last = Some(f());
    }
    let Some(last) = last else {
        return Err(BenchError::ZeroRepeats);
    };
    let times = tracer.span_durations_ms("bench_rep");
    // With anr-trace's `off` feature the spans vanish and the medians
    // degrade to 0.0; with tracing on, every repeat leaves one span.
    assert!(!tracer.is_enabled() || times.len() == repeats);
    Ok((median_of(times), last))
}

fn bench_scenario(
    id: u8,
    robots: usize,
    separation: f64,
    repeats: usize,
) -> Result<ScenarioTimings, BenchError> {
    let s = build_scenario(
        id,
        &ScenarioParams {
            robots,
            separation_ranges: separation,
            ..Default::default()
        },
    )?;
    let problem = MarchProblem::with_lattice_deployment(s.m1, s.m2, s.robots, s.range)?;
    let n = problem.num_robots();
    let config = MarchConfig::default();
    let spacing = config.resolve_mesh_spacing(problem.m2.area(), n);

    // Stage 1: grid-mesh the target FoI and fill its holes.
    let (mesh_ms, filled2) = median_ms(repeats, || {
        let foi2 = FoiMesher::new(spacing).mesh(&problem.m2)?;
        fill_holes(foi2.mesh()).map_err(anr_march::MarchError::from)
    })?;
    let filled2 = filled2?;

    // Stage 2: the harmonic duel on that mesh — same system, two
    // solvers.
    let pcg_cfg = HarmonicConfig {
        solver: Solver::Pcg,
        ..HarmonicConfig::default()
    };
    let gs_cfg = HarmonicConfig {
        solver: Solver::GaussSeidel,
        ..HarmonicConfig::default()
    };
    let (pcg_ms, pcg_map) = median_ms(repeats, || harmonic_map_to_disk(filled2.mesh(), &pcg_cfg))?;
    let (gs_ms, gs_map) = median_ms(repeats, || harmonic_map_to_disk(filled2.mesh(), &gs_cfg))?;
    let pcg_map = pcg_map.map_err(anr_march::MarchError::from)?;
    let gs_map = gs_map.map_err(anr_march::MarchError::from)?;
    let max_position_diff = pcg_map
        .positions()
        .iter()
        .zip(gs_map.positions())
        .map(|(a, b)| a.distance(*b))
        .fold(0.0f64, f64::max);

    // Stage 3: rotation search over the composed disk maps (method (a)
    // objective). The deployment-side map is prepared untimed.
    let t_mesh = extract_triangulation(&problem.positions, problem.range)
        .map_err(anr_march::MarchError::from)?;
    let filled_t = fill_holes(&t_mesh).map_err(anr_march::MarchError::from)?;
    let disk_t =
        harmonic_map_to_disk(filled_t.mesh(), &pcg_cfg).map_err(anr_march::MarchError::from)?;
    let robot_disk: Vec<_> = (0..n).map(|v| disk_t.position(v)).collect();
    let overlay = DiskOverlay::new(
        filled2.mesh(),
        pcg_map.positions(),
        filled2.virtual_vertices(),
    );
    let links = UnitDiskGraph::new(&problem.positions, problem.range).links();
    let disk_locator = anr_mesh::PointLocator::new(overlay.disk_mesh());
    let (rotation_ms, _) = median_ms(repeats, || {
        // Same shape as the pipeline's rotation stage: locator hoisted
        // out of the sweep, angle batches fanned over workers.
        config.rotation.maximize_batch(|thetas| {
            anr_par::par_map(thetas, 0, |&theta| {
                let q = overlay.map_all_with(&disk_locator, &robot_disk, theta);
                if links.is_empty() {
                    return 1.0;
                }
                links
                    .iter()
                    .filter(|&&(i, j)| q[i].position.distance(q[j].position) <= problem.range)
                    .count() as f64
                    / links.len() as f64
            })
        })
    })?;

    // Stage 4: the full pipeline, end to end. The same runs feed the
    // per-stage view: march emits a wall-clocked span for every
    // pipeline stage, so the stage medians come for free.
    let stage_tracer = Tracer::wall(1 << 17);
    let (march_ms, outcome) = median_ms(repeats, || {
        march_traced(&problem, Method::MaxStableLinks, &config, &stage_tracer)
    })?;
    let outcome = outcome?;
    let march_stages: Vec<StageTiming> = [
        "triangulate",
        "harmonic_m1",
        "harmonic_m2",
        "rotation",
        "repair",
        "trajectories",
        "lloyd",
        "metrics",
    ]
    .iter()
    .map(|&stage| StageTiming {
        stage,
        median_ms: median_of(stage_tracer.span_durations_ms(stage)),
    })
    .collect();

    // Stage 5: the warm-start duel — re-solve the robot triangulation
    // one march step later, cold versus warm-started from the previous
    // row's disk embedding. Uses the march's own timeline so the step
    // size is the real one, not a synthetic perturbation.
    let row_a = outcome.timeline.first().unwrap_or(&problem.positions);
    let row_b = outcome.timeline.get(1).unwrap_or(row_a);
    let mesh_a = anr_mesh::delaunay(row_a).map_err(anr_march::MarchError::from)?;
    let map_a = harmonic_map_to_disk(&mesh_a, &pcg_cfg).map_err(anr_march::MarchError::from)?;
    let mesh_b = anr_mesh::delaunay(row_b).map_err(anr_march::MarchError::from)?;
    let (cold_ms, cold_map) = median_ms(repeats, || harmonic_map_to_disk(&mesh_b, &pcg_cfg))?;
    let cold_map = cold_map.map_err(anr_march::MarchError::from)?;
    let warm_tracer = Tracer::disabled();
    let (warm_ms, warm_map) = median_ms(repeats, || {
        harmonic_map_to_disk_warm(&mesh_b, &pcg_cfg, map_a.positions(), &warm_tracer)
    })?;
    let warm_map = warm_map.map_err(anr_march::MarchError::from)?;
    let warm_diff = cold_map
        .positions()
        .iter()
        .zip(warm_map.positions())
        .map(|(a, b)| a.distance(*b))
        .fold(0.0f64, f64::max);
    let warm_start = WarmStartComparison {
        cold_ms,
        warm_ms,
        speedup: if warm_ms > 0.0 {
            cold_ms / warm_ms
        } else {
            0.0
        },
        cold_iterations: cold_map.iterations(),
        warm_iterations: warm_map.iterations(),
        max_position_diff: warm_diff,
    };

    // Stage 6: the guarded Lloyd refinement from the mapped positions.
    let partition = GridPartition::new(&problem.m2, spacing * 0.2);
    let lloyd_cfg = LloydConfig {
        record_history: true,
        ..config.lloyd
    };
    let (lloyd_ms, _) = median_ms(repeats, || {
        anr_coverage::run_lloyd_guarded(
            &outcome.mapped,
            &partition,
            &config.density,
            &lloyd_cfg,
            problem.range,
        )
    })?;

    Ok(ScenarioTimings {
        id,
        robots: n,
        mesh_vertices: filled2.mesh().num_vertices(),
        stages: vec![
            StageTiming {
                stage: "mesh",
                median_ms: mesh_ms,
            },
            StageTiming {
                stage: "harmonic_pcg",
                median_ms: pcg_ms,
            },
            StageTiming {
                stage: "harmonic_gs",
                median_ms: gs_ms,
            },
            StageTiming {
                stage: "rotation",
                median_ms: rotation_ms,
            },
            StageTiming {
                stage: "march",
                median_ms: march_ms,
            },
            StageTiming {
                stage: "lloyd",
                median_ms: lloyd_ms,
            },
        ],
        march_stages,
        harmonic: SolverComparison {
            pcg_ms,
            gs_ms,
            speedup: if pcg_ms > 0.0 { gs_ms / pcg_ms } else { 0.0 },
            pcg_iterations: pcg_map.iterations(),
            gs_iterations: gs_map.iterations(),
            max_position_diff,
        },
        warm_start,
        audit_pieces: outcome.metrics.audit_pieces,
        audit_checks: outcome.metrics.audit_checks,
    })
}

/// One end-to-end march at the 10⁴-robot scale tier (scenario 1,
/// single run — at this size a single march is minutes of compute, so
/// medians over repeats are not worth their cost).
fn bench_scale_tier(robots: usize) -> Result<ScaleTierTiming, BenchError> {
    let problem = crate::scenario_problem_sized(1, 10.0, robots)?;
    let config = MarchConfig::default();
    let tracer = Tracer::wall(1 << 18);
    let (march_ms, outcome) = median_ms(1, || {
        march_traced(&problem, Method::MaxStableLinks, &config, &tracer)
    })?;
    let outcome = outcome?;
    let march_stages = [
        "triangulate",
        "harmonic_m1",
        "harmonic_m2",
        "rotation",
        "repair",
        "trajectories",
        "lloyd",
        "metrics",
    ]
    .iter()
    .map(|&stage| StageTiming {
        stage,
        median_ms: median_of(tracer.span_durations_ms(stage)),
    })
    .collect();
    Ok(ScaleTierTiming {
        robots: problem.num_robots(),
        march_ms,
        march_stages,
        timeline_rows: outcome.timeline.len(),
        audit_pieces: outcome.metrics.audit_pieces,
        audit_checks: outcome.metrics.audit_checks,
    })
}

fn bench_fault_sweep(
    robots: usize,
    smoke: bool,
    repeats: usize,
) -> Result<FaultSweepTiming, BenchError> {
    let s = build_scenario(
        1,
        &ScenarioParams {
            robots,
            separation_ranges: 10.0,
            ..Default::default()
        },
    )?;
    let problem = MarchProblem::with_lattice_deployment(s.m1, s.m2, s.robots, s.range)?;
    let base = if smoke {
        SweepConfig {
            loss_rates: vec![0.0, 0.1],
            crash_counts: vec![0, 1],
            max_rounds: 2000,
            ..Default::default()
        }
    } else {
        SweepConfig::default()
    };
    let cells = base.loss_rates.len() * base.crash_counts.len();
    let workers = anr_par::default_workers();
    let serial_cfg = SweepConfig {
        workers: 1,
        ..base.clone()
    };
    let parallel_cfg = SweepConfig { workers, ..base };
    let (serial_ms, serial) = median_ms(repeats, || {
        run_fault_sweep(&problem.positions, problem.range, &serial_cfg)
    })?;
    let (parallel_ms, parallel) = median_ms(repeats, || {
        run_fault_sweep(&problem.positions, problem.range, &parallel_cfg)
    })?;
    let byte_identical = serial?.to_json() == parallel?.to_json();
    Ok(FaultSweepTiming {
        robots: problem.num_robots(),
        cells,
        serial_ms,
        parallel_ms,
        workers,
        byte_identical,
    })
}

/// Runs the full pipeline benchmark.
///
/// # Errors
///
/// Propagates scenario construction and pipeline failures.
pub fn run_pipeline_bench(opts: &BenchOptions) -> Result<PipelineBenchReport, BenchError> {
    // The scenario FoIs have the paper's fixed areas, so the robot count
    // can't drop below the paper's 144 even in smoke mode — fewer robots
    // make the deployment too sparse to triangulate. Smoke trims
    // scenarios and repeats instead. The full run deploys a denser
    // 1296-robot swarm (mesh spacing tracks robot pitch, so the
    // harmonic system grows with the swarm): at ~400 vertices both
    // solvers finish in well under a millisecond and constant factors
    // dominate; at ~3400 the O(n) vs O(√n) iteration counts are what
    // you measure.
    let (ids, robots, separation): (&[u8], usize, f64) = if opts.smoke {
        (&[1], 144, 10.0)
    } else {
        (&[1, 2, 3, 4, 5, 6, 7], 1296, 10.0)
    };
    let mut scenarios = Vec::new();
    for &id in ids {
        scenarios.push(bench_scenario(id, robots, separation, opts.repeats)?);
    }
    let fault_sweep = bench_fault_sweep(64, opts.smoke, opts.repeats)?;
    let scale = if opts.scale_tier {
        Some(bench_scale_tier(10_000)?)
    } else {
        None
    };
    Ok(PipelineBenchReport {
        cores: anr_par::default_workers(),
        workers: anr_par::default_workers(),
        repeats: opts.repeats,
        smoke: opts.smoke,
        scenarios,
        fault_sweep,
        scale,
    })
}

fn json_ms(x: f64) -> String {
    format!("{x:.3}")
}

impl PipelineBenchReport {
    /// Serializes the report as a self-contained JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"anr-bench-pipeline/3\",\n");
        s.push_str(&format!("  \"cores\": {},\n", self.cores));
        s.push_str(&format!("  \"workers\": {},\n", self.workers));
        s.push_str(&format!("  \"repeats\": {},\n", self.repeats));
        s.push_str(&format!("  \"smoke\": {},\n", self.smoke));
        s.push_str("  \"scenarios\": [\n");
        for (si, sc) in self.scenarios.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"id\": {},\n", sc.id));
            s.push_str(&format!("      \"robots\": {},\n", sc.robots));
            s.push_str(&format!("      \"mesh_vertices\": {},\n", sc.mesh_vertices));
            s.push_str("      \"stages\": [\n");
            for (i, st) in sc.stages.iter().enumerate() {
                s.push_str(&format!(
                    "        {{\"stage\": \"{}\", \"median_ms\": {}}}{}\n",
                    st.stage,
                    json_ms(st.median_ms),
                    if i + 1 < sc.stages.len() { "," } else { "" },
                ));
            }
            s.push_str("      ],\n");
            s.push_str("      \"march_stages\": [\n");
            for (i, st) in sc.march_stages.iter().enumerate() {
                s.push_str(&format!(
                    "        {{\"stage\": \"{}\", \"median_ms\": {}}}{}\n",
                    st.stage,
                    json_ms(st.median_ms),
                    if i + 1 < sc.march_stages.len() {
                        ","
                    } else {
                        ""
                    },
                ));
            }
            s.push_str("      ],\n");
            let h = &sc.harmonic;
            s.push_str(&format!(
                "      \"harmonic\": {{\"pcg_ms\": {}, \"gs_ms\": {}, \"speedup\": {:.2}, \
                 \"pcg_iterations\": {}, \"gs_iterations\": {}, \"max_position_diff\": {:.3e}}},\n",
                json_ms(h.pcg_ms),
                json_ms(h.gs_ms),
                h.speedup,
                h.pcg_iterations,
                h.gs_iterations,
                h.max_position_diff,
            ));
            let w = &sc.warm_start;
            s.push_str(&format!(
                "      \"warm_start\": {{\"cold_ms\": {}, \"warm_ms\": {}, \"speedup\": {:.2}, \
                 \"cold_iterations\": {}, \"warm_iterations\": {}, \
                 \"max_position_diff\": {:.3e}}},\n",
                json_ms(w.cold_ms),
                json_ms(w.warm_ms),
                w.speedup,
                w.cold_iterations,
                w.warm_iterations,
                w.max_position_diff,
            ));
            s.push_str(&format!(
                "      \"audit_pieces\": {},\n      \"audit_checks\": {}\n",
                sc.audit_pieces, sc.audit_checks,
            ));
            s.push_str(&format!(
                "    }}{}\n",
                if si + 1 < self.scenarios.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ],\n");
        let fsw = &self.fault_sweep;
        s.push_str(&format!(
            "  \"fault_sweep\": {{\"robots\": {}, \"cells\": {}, \"serial_ms\": {}, \
             \"parallel_ms\": {}, \"workers\": {}, \"byte_identical\": {}}},\n",
            fsw.robots,
            fsw.cells,
            json_ms(fsw.serial_ms),
            json_ms(fsw.parallel_ms),
            fsw.workers,
            fsw.byte_identical,
        ));
        match &self.scale {
            None => s.push_str("  \"scale_tier\": null\n"),
            Some(t) => {
                s.push_str("  \"scale_tier\": {\n");
                s.push_str(&format!("    \"robots\": {},\n", t.robots));
                s.push_str(&format!("    \"march_ms\": {},\n", json_ms(t.march_ms)));
                s.push_str("    \"march_stages\": [\n");
                for (i, st) in t.march_stages.iter().enumerate() {
                    s.push_str(&format!(
                        "      {{\"stage\": \"{}\", \"median_ms\": {}}}{}\n",
                        st.stage,
                        json_ms(st.median_ms),
                        if i + 1 < t.march_stages.len() {
                            ","
                        } else {
                            ""
                        },
                    ));
                }
                s.push_str("    ],\n");
                s.push_str(&format!("    \"timeline_rows\": {},\n", t.timeline_rows));
                s.push_str(&format!("    \"audit_pieces\": {},\n", t.audit_pieces));
                s.push_str(&format!("    \"audit_checks\": {}\n", t.audit_checks));
                s.push_str("  }\n");
            }
        }
        s.push_str("}\n");
        s
    }
}

/// Extracts `(scenario id, stage, median_ms)` triples from a pipeline
/// bench report's JSON — the committed `BENCH_pipeline*.json` baselines
/// this crate itself writes (scenario `march_stages` sections only).
///
/// The parser is keyed on this crate's own serializer layout; lines it
/// does not recognize are skipped, so schema `/2` baselines (without
/// audit counters) parse fine.
#[must_use]
pub fn parse_march_stage_medians(json: &str) -> Vec<(u8, String, f64)> {
    let mut out = Vec::new();
    let mut scenario: Option<u8> = None;
    let mut in_march_stages = false;
    let mut in_scale_tier = false;
    for line in json.lines() {
        let t = line.trim();
        if t.starts_with("\"scale_tier\"") {
            in_scale_tier = true;
        }
        if let Some(rest) = t.strip_prefix("\"id\":") {
            scenario = rest.trim_end_matches(',').trim().parse().ok();
        }
        if t.starts_with("\"march_stages\"") {
            in_march_stages = !in_scale_tier;
            continue;
        }
        if in_march_stages {
            if t.starts_with(']') {
                in_march_stages = false;
                continue;
            }
            let (Some(id), Some(si)) = (scenario, t.find("\"stage\": \"")) else {
                continue;
            };
            let rest = &t[si + 10..];
            let Some(se) = rest.find('\"') else { continue };
            let stage = rest[..se].to_string();
            let Some(mi) = t.find("\"median_ms\": ") else {
                continue;
            };
            let med = t[mi + 13..]
                .trim_end_matches(['}', ',', ' '])
                .parse::<f64>();
            if let Ok(m) = med {
                out.push((id, stage, m));
            }
        }
    }
    out
}

/// Compares a fresh report's per-scenario pipeline-stage medians against
/// a committed baseline report (same scale!), returning one message per
/// stage that regressed beyond `factor`× the baseline plus `grace_ms`.
///
/// The absolute grace keeps sub-millisecond stages from tripping the
/// guard on scheduler jitter. Stages or scenarios missing from either
/// side are ignored (a new stage has no baseline to regress from).
#[must_use]
pub fn stage_regressions(
    current: &PipelineBenchReport,
    baseline_json: &str,
    factor: f64,
    grace_ms: f64,
) -> Vec<String> {
    let baseline = parse_march_stage_medians(baseline_json);
    let mut messages = Vec::new();
    for sc in &current.scenarios {
        for st in &sc.march_stages {
            let Some((_, _, base)) = baseline
                .iter()
                .find(|(id, stage, _)| *id == sc.id && stage == st.stage)
            else {
                continue;
            };
            let limit = base * factor + grace_ms;
            if st.median_ms > limit {
                messages.push(format!(
                    "scenario {} stage `{}`: {:.3} ms exceeds {:.3} ms \
                     ({factor}x baseline {:.3} ms + {grace_ms} ms grace)",
                    sc.id, st.stage, st.median_ms, limit, base,
                ));
            }
        }
    }
    messages
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        let mut k = 0;
        let (m, last) = median_ms(3, || {
            k += 1;
            k
        })
        .unwrap();
        assert!(m >= 0.0);
        assert_eq!(last, 3);
    }

    #[test]
    fn smoke_bench_runs_and_serializes() {
        let report = run_pipeline_bench(&BenchOptions {
            smoke: true,
            repeats: 1,
            scale_tier: false,
        })
        .unwrap();
        assert_eq!(report.scenarios.len(), 1);
        assert!(report.fault_sweep.byte_identical);
        let sc = &report.scenarios[0];
        assert_eq!(sc.stages.len(), 6);
        assert_eq!(sc.march_stages.len(), 8);
        // Every pipeline stage span was seen and timed on this machine.
        for st in &sc.march_stages {
            assert!(st.median_ms > 0.0, "stage `{}` never timed", st.stage);
        }
        // Same linear system, two solvers: the embeddings agree tightly.
        assert!(
            sc.harmonic.max_position_diff < 1e-6,
            "diff {}",
            sc.harmonic.max_position_diff
        );
        // The warm-started re-solve lands on the cold solution (to
        // solver tolerance) without doing more work than the cold one.
        assert!(
            sc.warm_start.max_position_diff < 1e-4,
            "warm diff {}",
            sc.warm_start.max_position_diff
        );
        assert!(
            sc.warm_start.warm_iterations <= sc.warm_start.cold_iterations,
            "warm start did extra work: {} > {}",
            sc.warm_start.warm_iterations,
            sc.warm_start.cold_iterations
        );
        let json = report.to_json();
        for key in [
            "\"schema\": \"anr-bench-pipeline/3\"",
            "\"workers\"",
            "\"audit_pieces\"",
            "\"audit_checks\"",
            "\"scale_tier\": null",
            "\"stage\": \"harmonic_pcg\"",
            "\"stage\": \"lloyd\"",
            "\"march_stages\"",
            "\"stage\": \"triangulate\"",
            "\"stage\": \"trajectories\"",
            "\"speedup\"",
            "\"warm_start\"",
            "\"cold_iterations\"",
            "\"fault_sweep\"",
            "\"byte_identical\": true",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(sc.audit_checks >= 1, "audit never checked connectivity");
        assert!(sc.audit_pieces >= 1, "audit saw no motion pieces");

        // The report's own JSON round-trips through the baseline parser,
        // and an identical baseline never trips the regression guard.
        let parsed = parse_march_stage_medians(&json);
        assert_eq!(parsed.len(), sc.march_stages.len());
        for st in &sc.march_stages {
            assert!(
                parsed.iter().any(|(id, stage, m)| *id == sc.id
                    && stage == st.stage
                    && (*m - st.median_ms).abs() <= 0.0005),
                "stage `{}` lost by the parser",
                st.stage
            );
        }
        assert!(stage_regressions(&report, &json, 2.0, 10.0).is_empty());

        // A baseline claiming everything ran in ~0 ms flags every stage
        // slower than the grace budget.
        let zeroed: String = json
            .lines()
            .map(|l| {
                if l.contains("\"median_ms\"") {
                    let head = l.split("\"median_ms\"").next().unwrap();
                    format!("{head}\"median_ms\": 0.000}},")
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let slow: Vec<_> = sc
            .march_stages
            .iter()
            .filter(|st| st.median_ms > 10.0)
            .collect();
        let flagged = stage_regressions(&report, &zeroed, 2.0, 10.0);
        assert_eq!(flagged.len(), slow.len(), "{flagged:?}");
    }
}
