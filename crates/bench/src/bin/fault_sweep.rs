//! Protocol survival under network faults: a seeded (loss rate ×
//! crash count) grid of the robust marching protocols — ack/retransmit
//! flooding and the robust hop field — run on each scenario's
//! deployment, emitted as JSON.
//!
//! ```sh
//! cargo run --release -p anr-bench --bin fault_sweep            # scenario 1
//! cargo run --release -p anr-bench --bin fault_sweep -- --scenario 3
//! ```
//!
//! Per cell the grid records convergence, correctness against the
//! centralized reference on the surviving topology, rounds to
//! quiescence, and message overhead relative to the zero-fault
//! baseline. Two runs with the same seed produce identical bytes.

use anr_bench::{scenario_flag, scenario_problem, BenchError};
use anr_march::{run_fault_sweep, SweepConfig};

fn main() -> Result<(), BenchError> {
    let id = scenario_flag().unwrap_or(1);
    let problem = scenario_problem(id, 10.0)?;
    let config = SweepConfig {
        loss_rates: vec![0.0, 0.05, 0.1, 0.2, 0.3],
        crash_counts: vec![0, 1, 2, 4],
        seed: 42,
        ..Default::default()
    };
    let report = run_fault_sweep(&problem.positions, problem.range, &config)?;
    print!("{}", report.to_json());
    Ok(())
}
