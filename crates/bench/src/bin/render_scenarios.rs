//! Renders the FoI geometry of all seven scenarios as SVG maps (the
//! "first row" panels of the paper's Figs. 3 and 5): current FoI with
//! the deployed swarm, target FoI with its holes.
//!
//! ```sh
//! cargo run --release -p anr-bench --bin render_scenarios
//! # SVGs land in target/figures/scenarios/
//! ```

use anr_coverage::deploy_exactly;
use anr_netgraph::UnitDiskGraph;
use anr_scenarios::{build_scenario, ScenarioParams};
use anr_viz::{palette, SvgCanvas};
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = PathBuf::from("target/figures/scenarios");
    std::fs::create_dir_all(&out_dir)?;

    for id in 1..=7u8 {
        let s = build_scenario(
            id,
            &ScenarioParams {
                separation_ranges: 12.0, // compact layout for the map
                ..Default::default()
            },
        )?;
        let positions = deploy_exactly(&s.m1, s.robots).expect("deployment fits");
        let graph = UnitDiskGraph::new(&positions, s.range);

        let mut svg = SvgCanvas::fitting([s.m1.bbox(), s.m2.bbox()], 1200.0);
        svg.region(&s.m1, palette::FOI_FILL, palette::FOI_STROKE);
        svg.region(&s.m2, palette::FOI_FILL, palette::FOI_STROKE);
        for (i, j) in graph.links() {
            svg.line(positions[i], positions[j], palette::PRESERVED, 0.7);
        }
        for &p in &positions {
            svg.robot(p, 2.0, palette::ROBOT);
        }
        // Label the two fields.
        let c1 = s.m1.centroid();
        let c2 = s.m2.centroid();
        svg.text(
            anr_geom::Point::new(c1.x, s.m1.bbox().max.y + 30.0),
            16.0,
            &format!("M1 ({:.0} m²)", s.m1.area()),
        );
        svg.text(
            anr_geom::Point::new(c2.x, s.m2.bbox().max.y + 30.0),
            16.0,
            &format!("M2 ({:.0} m², {} holes)", s.m2.area(), s.m2.holes().len()),
        );
        svg.save(out_dir.join(format!("scenario{id}.svg")))?;
        println!("scenario {id}: {}", s.name);
    }
    println!("maps written to {}", out_dir.display());
    Ok(())
}
