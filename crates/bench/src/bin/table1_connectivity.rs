//! Table I: global connectivity during the transition procedure, per
//! scenario and method.
//!
//! The paper reports a single Y/N per (scenario, method). Connectivity
//! depends on the FoI separation, so this harness evaluates the full
//! 10×–100× sweep and reports **Y only when global connectivity held at
//! every separation** — the strictest reading, and the one under which
//! the proposed methods' guarantee is meaningful. The per-separation
//! breakdown is printed below the table.
//!
//! ```sh
//! cargo run --release -p anr-bench --bin table1_connectivity
//! cargo run --release -p anr-bench --bin table1_connectivity -- --quick
//! ```

use anr_bench::{
    paper_separations, quick_flag, quick_separations, run_all_methods, scenario_problem,
    BenchError, METHOD_NAMES,
};
use anr_march::MarchConfig;
use std::collections::BTreeMap;

fn main() -> Result<(), BenchError> {
    let separations = if quick_flag() {
        quick_separations()
    } else {
        paper_separations()
    };
    let config = MarchConfig::default();

    // (scenario, method) → per-separation connectivity.
    let mut results: BTreeMap<(u8, &'static str), Vec<u8>> = BTreeMap::new();
    for id in 1..=7u8 {
        for &sep in &separations {
            let problem = scenario_problem(id, sep)?;
            for (name, outcome) in run_all_methods(&problem, &config)? {
                results
                    .entry((id, name))
                    .or_default()
                    .push(outcome.metrics.global_connectivity);
            }
        }
    }

    println!("TABLE I. GLOBAL CONNECTIVITY DURING TRANSITION PROCEDURE");
    println!(
        "(Y = connected at every sampled instant for every separation in {:?} × r_c)",
        separations
    );
    println!(
        "{:<12} {:>14} {:>14} {:>19} {:>10}",
        "", "Our Method (a)", "Our Method (b)", "Direct Translation", "Hungarian"
    );
    for id in 1..=7u8 {
        let cell = |method: &str| -> &'static str {
            if results[&(id, method)].iter().all(|&c| c == 1) {
                "Y"
            } else {
                "N"
            }
        };
        println!(
            "{:<12} {:>14} {:>14} {:>19} {:>10}",
            format!("Scenario {id}"),
            cell("ours_a"),
            cell("ours_b"),
            cell("direct_translation"),
            cell("hungarian"),
        );
    }

    println!("\nper-separation breakdown (1 = connected):");
    println!(
        "scenario,method,{}",
        separations
            .iter()
            .map(|s| format!("sep{s}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    for id in 1..=7u8 {
        for name in METHOD_NAMES {
            let row = &results[&(id, name)];
            println!(
                "{id},{name},{}",
                row.iter().map(u8::to_string).collect::<Vec<_>>().join(",")
            );
        }
    }
    Ok(())
}
