//! Fig. 4: total moving distance and total stable link ratio versus FoI
//! separation for scenario 3 — the target FoI with the concave
//! flower-shaped pond of Fig. 2(d).
//!
//! ```sh
//! cargo run --release -p anr-bench --bin fig4_scenario3
//! ```

use anr_bench::{
    paper_separations, print_sweep_header, quick_flag, quick_separations, sweep_scenario,
};
use anr_march::MarchConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let separations = if quick_flag() {
        quick_separations()
    } else {
        paper_separations()
    };
    print_sweep_header();
    sweep_scenario(3, &separations, &MarchConfig::default())?;
    Ok(())
}
