//! Ablation: connectivity-repair variants on sparse swarms.
//!
//! The paper's Sec. III-D-1 repair detects isolation with packets
//! initiated at boundary vertices, implicitly assuming the mapped
//! boundary ring stays connected. For sparse swarms that assumption can
//! fail; this library's default is the *strict* variant that also merges
//! preserved-link components. The ablation compares, per swarm size:
//! no repair, the paper's boundary-based repair, and the strict repair —
//! reporting predicted endpoint connectivity, robots re-targeted and the
//! distance overhead of the re-targeting.
//!
//! ```sh
//! cargo run --release -p anr-bench --bin ablation_repair
//! ```

use anr_geom::{Point, Polygon, PolygonWithHoles};
use anr_march::{repair_connectivity, repair_connectivity_strict, MarchConfig, MarchProblem};
use anr_netgraph::{extract_triangulation, UnitDiskGraph};

/// Builds the raw harmonic-map targets for a problem without any repair
/// (refine_coverage off, strict repair bypassed by re-deriving targets
/// from the unrepaired outcome is not exposed; instead run the pipeline
/// pieces directly).
fn raw_targets(problem: &MarchProblem) -> Option<(Vec<Point>, Vec<usize>)> {
    use anr_harmonic::{fill_holes, harmonic_map_to_disk, DiskOverlay};
    use anr_mesh::FoiMesher;

    let n = problem.num_robots();
    let t_mesh = extract_triangulation(&problem.positions, problem.range).ok()?;
    if (0..n).any(|v| t_mesh.vertex_neighbors(v).is_empty()) {
        return None;
    }
    let filled_t = fill_holes(&t_mesh).ok()?;
    let disk_t = harmonic_map_to_disk(filled_t.mesh(), &Default::default()).ok()?;
    let robot_disk: Vec<Point> = (0..n).map(|v| disk_t.position(v)).collect();

    let config = MarchConfig::default();
    let spacing = config.resolve_mesh_spacing(problem.m2.area(), n);
    let foi2 = FoiMesher::new(spacing).mesh(&problem.m2).ok()?;
    let filled2 = fill_holes(foi2.mesh()).ok()?;
    let disk2 = harmonic_map_to_disk(filled2.mesh(), &Default::default()).ok()?;
    let overlay = DiskOverlay::new(
        filled2.mesh(),
        disk2.positions(),
        filled2.virtual_vertices(),
    );
    let targets: Vec<Point> = overlay
        .map_all(&robot_disk, 0.0)
        .into_iter()
        .map(|m| problem.m2.clamp_inside(m.position))
        .collect();
    let boundary: Vec<usize> = filled_t
        .mesh()
        .boundary_loops()
        .into_iter()
        .next()
        .unwrap_or_default()
        .into_iter()
        .filter(|&v| v < n)
        .collect();
    Some((targets, boundary))
}

/// Is the preserved-link graph of (positions → targets) connected?
fn preserved_connected(positions: &[Point], targets: &[Point], range: f64) -> bool {
    let g = UnitDiskGraph::new(positions, range);
    let n = positions.len();
    let mut uf = anr_netgraph::UnionFind::new(n);
    for (i, j) in g.links() {
        if targets[i].distance(targets[j]) <= range {
            uf.union(i, j);
        }
    }
    uf.num_sets() == 1
}

fn main() {
    println!("robots,variant,preserved_graph_connected,adjusted_robots,extra_distance_m");
    // Sparse-to-dense sweep: small swarms stress the boundary assumption.
    for robots in [24usize, 36, 64, 100, 144] {
        // M1 dense enough to triangulate (pitch ~61 m); M2 strongly
        // elongated so the mapped boundary ring is stretched.
        let side = (robots as f64 * 3200.0).sqrt();
        let m1 = PolygonWithHoles::without_holes(Polygon::rectangle(Point::ORIGIN, side, side));
        let m2 = PolygonWithHoles::without_holes(Polygon::rectangle(
            Point::new(side + 1200.0, 0.0),
            side * 1.6,
            side * 0.35,
        ));
        // Raw lattice deployment (no Lloyd refinement): constant pitch
        // keeps every Delaunay edge within range so the comparison
        // isolates the repair stage.
        let Some(positions) = anr_coverage::deploy_exactly(&m1, robots) else {
            println!("{robots},skipped_deployment,,,");
            continue;
        };
        let Ok(problem) = MarchProblem::new(m1, m2, positions, 80.0) else {
            println!("{robots},skipped_disconnected_deployment,,,");
            continue;
        };
        let Some((base_targets, boundary)) = raw_targets(&problem) else {
            println!("{robots},skipped_triangulation,,,");
            continue;
        };
        let base_d: f64 = problem
            .positions
            .iter()
            .zip(&base_targets)
            .map(|(a, b)| a.distance(*b))
            .sum();

        // No repair.
        println!(
            "{robots},none,{},0,0",
            preserved_connected(&problem.positions, &base_targets, problem.range),
        );

        // Paper's boundary-based repair.
        let mut t1 = base_targets.clone();
        let r1 = repair_connectivity(&problem.positions, &mut t1, &boundary, problem.range);
        let d1: f64 = problem
            .positions
            .iter()
            .zip(&t1)
            .map(|(a, b)| a.distance(*b))
            .sum();
        println!(
            "{robots},boundary_packets,{},{},{:.1}",
            preserved_connected(&problem.positions, &t1, problem.range),
            r1.adjusted_robots.len(),
            d1 - base_d,
        );

        // Strict repair (this library's default).
        let mut t2 = base_targets.clone();
        let r2 = repair_connectivity_strict(&problem.positions, &mut t2, &boundary, problem.range);
        let d2: f64 = problem
            .positions
            .iter()
            .zip(&t2)
            .map(|(a, b)| a.distance(*b))
            .sum();
        println!(
            "{robots},strict,{},{},{:.1}",
            preserved_connected(&problem.positions, &t2, problem.range),
            r2.adjusted_robots.len(),
            d2 - base_d,
        );
    }
}
