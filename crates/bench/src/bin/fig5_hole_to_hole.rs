//! Fig. 5: the hole-to-hole scenarios 6 and 7 — total moving distance
//! and total stable link ratio versus FoI separation when both FoIs
//! contain holes.
//!
//! ```sh
//! cargo run --release -p anr-bench --bin fig5_hole_to_hole
//! ```

use anr_bench::{
    paper_separations, print_sweep_header, quick_flag, quick_separations, scenario_flag,
    sweep_scenarios_parallel,
};
use anr_march::MarchConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let separations = if quick_flag() {
        quick_separations()
    } else {
        paper_separations()
    };
    let scenarios: Vec<u8> = match scenario_flag() {
        Some(id) => vec![id],
        None => vec![6, 7],
    };
    print_sweep_header();
    sweep_scenarios_parallel(&scenarios, &separations, &MarchConfig::default())?;
    Ok(())
}
