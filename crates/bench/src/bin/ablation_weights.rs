//! Ablation: interior averaging weights of the harmonic map. The paper's
//! robots compute plain averages (uniform/Tutte weights); mean-value
//! weights preserve shape better on irregular meshes. Compare L/D across
//! scenarios.
//!
//! ```sh
//! cargo run --release -p anr-bench --bin ablation_weights
//! ```

use anr_bench::{scenario_problem, BenchError};
use anr_harmonic::{HarmonicConfig, Weighting};
use anr_march::{march, MarchConfig, Method};

fn main() -> Result<(), BenchError> {
    println!("scenario,weighting,stable_link_ratio,total_distance_m,global_connectivity");
    for id in 1..=7u8 {
        let problem = scenario_problem(id, 30.0)?;
        for (name, weighting) in [
            ("uniform", Weighting::Uniform),
            ("mean_value", Weighting::MeanValue),
        ] {
            let config = MarchConfig {
                harmonic: HarmonicConfig {
                    weighting,
                    ..Default::default()
                },
                ..Default::default()
            };
            let out = march(&problem, Method::MaxStableLinks, &config)?;
            println!(
                "{},{},{:.4},{:.1},{}",
                id,
                name,
                out.metrics.stable_link_ratio,
                out.metrics.total_distance,
                out.metrics.global_connectivity,
            );
        }
    }
    Ok(())
}
