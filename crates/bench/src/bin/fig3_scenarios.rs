//! Fig. 3, rows 4 and 5: total moving distance and total stable link
//! ratio versus FoI separation (10×–100× r_c) for scenarios 1 (similar
//! boundary), 2 (dissimilar boundary), 4 (big convex hole) and
//! 5 (multiple small holes).
//!
//! ```sh
//! cargo run --release -p anr-bench --bin fig3_scenarios            # all four
//! cargo run --release -p anr-bench --bin fig3_scenarios -- --scenario 2
//! cargo run --release -p anr-bench --bin fig3_scenarios -- --quick
//! ```

use anr_bench::{
    paper_separations, print_sweep_header, quick_flag, quick_separations, scenario_flag,
    sweep_scenarios_parallel,
};
use anr_march::MarchConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let separations = if quick_flag() {
        quick_separations()
    } else {
        paper_separations()
    };
    let scenarios: Vec<u8> = match scenario_flag() {
        Some(id) => vec![id],
        None => vec![1, 2, 4, 5],
    };
    let config = MarchConfig::default();

    print_sweep_header();
    sweep_scenarios_parallel(&scenarios, &separations, &config)?;
    Ok(())
}
