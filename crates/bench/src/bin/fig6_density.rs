//! Fig. 6: density-adjusted deployment — encode "the closer to the hole,
//! the more mobile robots are needed" into the centroid computation and
//! measure the resulting radial density profile.
//!
//! ```sh
//! cargo run --release -p anr-bench --bin fig6_density
//! ```

use anr_bench::{charts_flag, scenario_problem, BenchError};
use anr_coverage::Density;
use anr_march::{march, MarchConfig, Method};

fn main() -> Result<(), BenchError> {
    let problem = scenario_problem(3, 30.0)?;
    let m2 = problem.m2.clone();

    let uniform_cfg = MarchConfig::default();
    let dense_cfg = MarchConfig {
        density: Density::HoleProximity {
            falloff: 100.0,
            gain: 30.0,
        },
        lloyd: anr_coverage::LloydConfig {
            tolerance: 0.5,
            max_iterations: 80,
            ..Default::default()
        },
        ..Default::default()
    };

    let uniform = march(&problem, Method::MaxStableLinks, &uniform_cfg)?;
    let dense = march(&problem, Method::MaxStableLinks, &dense_cfg)?;

    // Band areas from the sample grid (handles the concave boundary).
    let grid = m2.grid_points(8.0);
    let cell = 64.0;
    let bands = [0.0, 60.0, 120.0, 180.0, 240.0, f64::INFINITY];

    println!("band_min_m,band_max_m,band_area_m2,robots_uniform,robots_density,density_uniform_per_1e4m2,density_weighted_per_1e4m2");
    let mut chart_categories: Vec<String> = Vec::new();
    let mut chart_uniform: Vec<f64> = Vec::new();
    let mut chart_weighted: Vec<f64> = Vec::new();
    for w in bands.windows(2) {
        let in_band = |p: &anr_geom::Point| {
            let d = m2.distance_to_holes(*p);
            d >= w[0] && d < w[1]
        };
        let band_area = grid.iter().filter(|p| in_band(p)).count() as f64 * cell;
        if band_area == 0.0 {
            continue;
        }
        let cu = uniform
            .final_positions
            .iter()
            .filter(|p| in_band(p))
            .count();
        let cd = dense.final_positions.iter().filter(|p| in_band(p)).count();
        println!(
            "{},{},{:.0},{},{},{:.3},{:.3}",
            w[0],
            if w[1].is_finite() { w[1] } else { 1e9 },
            band_area,
            cu,
            cd,
            cu as f64 / band_area * 1e4,
            cd as f64 / band_area * 1e4,
        );
        chart_categories.push(if w[1].is_finite() {
            format!("{:.0}-{:.0}", w[0], w[1])
        } else {
            format!("{:.0}+", w[0])
        });
        chart_uniform.push(cu as f64 / band_area * 1e4);
        chart_weighted.push(cd as f64 / band_area * 1e4);
    }

    if let Some(dir) = charts_flag() {
        std::fs::create_dir_all(&dir).ok();
        let mut chart = anr_viz::BarChart::new(
            "Fig. 6: robot density by distance-to-hole band",
            "distance to hole (m)",
            "robots per 10\u{2074} m\u{00b2}",
        );
        chart.set_categories(chart_categories);
        chart.add_series("uniform", chart_uniform);
        chart.add_series("hole-proximity density", chart_weighted);
        if let Err(e) = chart.save(dir.join("fig6_density.svg")) {
            eprintln!("warning: failed to write chart: {e}");
        } else {
            eprintln!(
                "chart written to {}",
                dir.join("fig6_density.svg").display()
            );
        }
    }

    eprintln!(
        "uniform: C={} L={:.3}; hole-density: C={} L={:.3}",
        uniform.metrics.global_connectivity,
        uniform.metrics.stable_link_ratio,
        dense.metrics.global_connectivity,
        dense.metrics.stable_link_ratio,
    );
    Ok(())
}
