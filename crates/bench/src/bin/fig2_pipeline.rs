//! Fig. 2: the algorithm pipeline on scenario 3 — per-stage statistics
//! plus the SVG panels (via the same rendering as
//! `examples/pipeline_stages.rs`).
//!
//! ```sh
//! cargo run --release -p anr-bench --bin fig2_pipeline
//! ```

use anr_bench::scenario_problem;
use anr_harmonic::{fill_holes, harmonic_map_to_disk, HarmonicConfig};
use anr_march::{march, MarchConfig, Method};
use anr_mesh::{FoiMesher, MeshQuality};
use anr_netgraph::{extract_triangulation, UnitDiskGraph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let problem = scenario_problem(3, 30.0)?;
    let config = MarchConfig::default();

    // (a) connectivity graph in M1
    let g = UnitDiskGraph::new(&problem.positions, problem.range);
    println!(
        "stage a (connectivity graph): {} robots, {} links, mean degree {:.2}",
        g.len(),
        g.num_links(),
        2.0 * g.num_links() as f64 / g.len() as f64,
    );

    // (b) extracted triangulation
    let t = extract_triangulation(&problem.positions, problem.range)?;
    println!(
        "stage b (triangulation T): {} triangles, {} edges, quality: {}",
        t.num_triangles(),
        t.num_edges(),
        MeshQuality::of(&t),
    );

    // (c) harmonic map of T to the disk
    let filled_t = fill_holes(&t)?;
    let disk_t = harmonic_map_to_disk(filled_t.mesh(), &HarmonicConfig::default())?;
    println!(
        "stage c (harmonic map of T): boundary {} vertices, {} iterations to converge",
        disk_t.boundary().len(),
        disk_t.iterations(),
    );

    // (d) target FoI meshing + map
    let spacing = config.resolve_mesh_spacing(problem.m2.area(), problem.num_robots());
    let foi2 = FoiMesher::new(spacing).mesh(&problem.m2)?;
    let filled2 = fill_holes(foi2.mesh())?;
    let disk2 = harmonic_map_to_disk(filled2.mesh(), &HarmonicConfig::default())?;
    println!(
        "stage d (target FoI mesh): spacing {:.1} m, {} vertices, {} triangles, {} holes filled, disk map in {} iterations",
        spacing,
        filled2.mesh().num_vertices(),
        filled2.mesh().num_triangles(),
        filled2.num_holes(),
        disk2.iterations(),
    );

    // (e) + (f): full pipeline
    let out = march(&problem, Method::MaxStableLinks, &config)?;
    let after = UnitDiskGraph::new(&out.mapped, problem.range);
    let preserved_now = after
        .links()
        .iter()
        .filter(|&&(i, j)| g.has_link(i, j))
        .count();
    println!(
        "stage e (after transition): rotation {:.3} rad, {} links ({} preserved / {} new), {} robots re-targeted by repair",
        out.rotation,
        after.num_links(),
        preserved_now,
        after.num_links() - preserved_now,
        out.repair.adjusted_robots.len(),
    );
    println!(
        "stage f (optimal coverage): {} Lloyd iterations, final metrics: L = {:.3}, D = {:.0} m, C = {}",
        out.lloyd_iterations,
        out.metrics.stable_link_ratio,
        out.metrics.total_distance,
        out.metrics.global_connectivity,
    );
    println!("\nrun `cargo run --release --example pipeline_stages` for the SVG panels");
    Ok(())
}
