//! Ablation: is the harmonic map actually least-stretched?
//!
//! The paper's Sec. II-B argues the discrete harmonic map is a
//! "least-stretched diffeomorphism", which is *why* it preserves links.
//! This harness measures the link-stretch distribution of every method's
//! endpoint mapping: smaller maximum stretch ⇒ fewer links pushed past
//! the communication range.
//!
//! ```sh
//! cargo run --release -p anr-bench --bin ablation_stretch
//! ```

use anr_bench::{run_all_methods, scenario_problem, BenchError};
use anr_march::{edge_stretch_stats, MarchConfig};

fn main() -> Result<(), BenchError> {
    println!("scenario,method,mean_stretch,max_stretch,fraction_unstretched,stable_link_ratio");
    for id in [1u8, 2, 3, 7] {
        let problem = scenario_problem(id, 30.0)?;
        let results = run_all_methods(&problem, &MarchConfig::default())?;
        for (name, outcome) in &results {
            // Stretch of the full relocation endpoints (initial
            // positions → final coverage positions), so the baselines'
            // second legs are included.
            let stats =
                edge_stretch_stats(&problem.positions, &outcome.final_positions, problem.range)
                    .expect("endpoint rows are finite and matched")
                    .expect("paper deployments have links");
            println!(
                "{},{},{:.3},{:.3},{:.3},{:.3}",
                id,
                name,
                stats.mean,
                stats.max,
                stats.fraction_compressed,
                outcome.metrics.stable_link_ratio,
            );
        }
    }
    Ok(())
}
