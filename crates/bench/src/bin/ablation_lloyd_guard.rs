//! Ablation: the connectivity guard on the final Lloyd refinement
//! (Sec. III-D-1). Plain Lloyd moves every robot straight to its
//! centroid; the guarded variant halves the step whenever the full step
//! would disconnect the network. Compare connectivity during the
//! refinement, adjustment cost and final coverage.
//!
//! ```sh
//! cargo run --release -p anr-bench --bin ablation_lloyd_guard
//! ```

use anr_bench::{scenario_problem, BenchError};
use anr_coverage::{
    covered_fraction, run_lloyd, run_lloyd_guarded, Density, GridPartition, LloydConfig,
};
use anr_march::{march, MarchConfig, Method};
use anr_netgraph::UnitDiskGraph;

fn main() -> Result<(), BenchError> {
    println!("scenario,variant,iterations,adjustment_distance_m,refinement_connected_throughout,coverage_fraction");
    for id in [1u8, 3, 7] {
        let problem = scenario_problem(id, 30.0)?;
        // Transition without refinement, then refine both ways.
        let cfg = MarchConfig {
            refine_coverage: false,
            ..Default::default()
        };
        let out = march(&problem, Method::MaxStableLinks, &cfg)?;

        let spacing = cfg.resolve_mesh_spacing(problem.m2.area(), problem.num_robots());
        let partition = GridPartition::new(&problem.m2, spacing * 0.2);
        let lloyd_cfg = LloydConfig {
            tolerance: 1.0,
            max_iterations: 30,
            // This ablation audits per-step connectivity.
            record_history: true,
        };
        let r_s = problem.sensing_range();

        for (name, result) in [
            (
                "plain",
                run_lloyd(&out.mapped, &partition, &Density::Uniform, &lloyd_cfg),
            ),
            (
                "guarded",
                run_lloyd_guarded(
                    &out.mapped,
                    &partition,
                    &Density::Uniform,
                    &lloyd_cfg,
                    problem.range,
                ),
            ),
        ] {
            let connected_throughout = result
                .history
                .iter()
                .all(|row| UnitDiskGraph::new(row, problem.range).is_connected());
            let coverage = covered_fraction(&partition, &result.sites, r_s);
            println!(
                "{},{},{},{:.1},{},{:.4}",
                id, name, result.iterations, result.total_movement, connected_throughout, coverage,
            );
        }
    }
    Ok(())
}
