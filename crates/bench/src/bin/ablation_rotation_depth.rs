//! Ablation: rotation-search depth. The paper fixes the bisection depth
//! at 4 and claims the result is "very close to the optimal one"; this
//! harness sweeps the depth and compares against an exhaustive 720-angle
//! sweep.
//!
//! ```sh
//! cargo run --release -p anr-bench --bin ablation_rotation_depth
//! ```

use anr_bench::{scenario_problem, BenchError};
use anr_harmonic::RotationSearch;
use anr_march::{march, MarchConfig, Method};

fn main() -> Result<(), BenchError> {
    let problem = scenario_problem(3, 30.0)?;

    println!("depth,initial_samples,evaluations,stable_link_ratio,rotation_rad");
    for depth in 0..=8usize {
        let config = MarchConfig {
            rotation: RotationSearch::new(16, depth),
            ..Default::default()
        };
        let out = march(&problem, Method::MaxStableLinks, &config)?;
        println!(
            "{},16,{},{:.4},{:.4}",
            depth,
            16 + 2 * depth,
            out.metrics.stable_link_ratio,
            out.rotation,
        );
    }

    // Exhaustive reference: 720 coarse samples, no refinement.
    let config = MarchConfig {
        rotation: RotationSearch::new(720, 0),
        ..Default::default()
    };
    let out = march(&problem, Method::MaxStableLinks, &config)?;
    println!(
        "exhaustive,720,720,{:.4},{:.4}",
        out.metrics.stable_link_ratio, out.rotation,
    );
    Ok(())
}
