//! Ablation: why the two-disk ("modified") harmonic map exists.
//!
//! The obvious construction — harmonically map the robot triangulation
//! `T` *directly* onto the target FoI by pinning T's boundary to M2's
//! boundary — requires a convex target to be a diffeomorphism
//! (Kneser/Choquet, paper Sec. II-B). On the paper's concave FoIs it
//! flips triangles (robots cross paths / leave the FoI); the two-disk
//! route never does. This harness measures both per scenario.
//!
//! ```sh
//! cargo run --release -p anr-bench --bin ablation_direct_map
//! ```

use anr_bench::scenario_problem;
use anr_geom::Point;
use anr_harmonic::{fill_holes, harmonic_map_to_disk, harmonic_map_with_boundary, HarmonicConfig};
use anr_march::{march, MarchConfig, Method};
use anr_netgraph::{extract_triangulation, UnitDiskGraph};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("scenario,approach,flipped_triangles,total_triangles,targets_outside_m2,stable_link_ratio_endpoints");
    for id in 1..=7u8 {
        let problem = scenario_problem(id, 30.0)?;
        let n = problem.num_robots();
        let t_mesh = extract_triangulation(&problem.positions, problem.range)?;
        let filled = fill_holes(&t_mesh)?;

        // ----- Direct map: pin T's boundary onto M2's outer boundary by
        // arclength, solve the interior. -------------------------------
        let disk = harmonic_map_to_disk(filled.mesh(), &HarmonicConfig::default())?;
        let b_len = disk.boundary().len();
        let m2_boundary = problem
            .m2
            .outer()
            .resample_boundary(problem.m2.outer().perimeter() / b_len as f64, b_len);
        let pinned: Vec<Point> = (0..b_len)
            .map(|k| m2_boundary[k % m2_boundary.len()])
            .collect();
        let direct =
            harmonic_map_with_boundary(filled.mesh(), &pinned, &HarmonicConfig::default())?;
        let emb = direct.as_disk_mesh(filled.mesh());
        let flipped = (0..emb.num_triangles())
            .filter(|&t| emb.triangle(t).signed_area() <= 0.0)
            .count();
        let direct_targets: Vec<Point> = (0..n).map(|v| direct.position(v)).collect();
        let outside = direct_targets
            .iter()
            .filter(|q| !problem.m2.contains(**q) || problem.m2.in_hole(**q))
            .count();
        let l_direct = endpoint_link_ratio(&problem.positions, &direct_targets, problem.range);
        println!(
            "{id},direct_to_m2,{flipped},{},{outside},{l_direct:.3}",
            emb.num_triangles(),
        );

        // ----- Two-disk route (the paper's method (a)). ---------------
        let cfg = MarchConfig {
            refine_coverage: false,
            ..Default::default()
        };
        let ours = march(&problem, Method::MaxStableLinks, &cfg)?;
        let l_ours = endpoint_link_ratio(&problem.positions, &ours.mapped, problem.range);
        let ours_outside = ours
            .mapped
            .iter()
            .filter(|q| !problem.m2.contains(**q) || problem.m2.in_hole(**q))
            .count();
        println!(
            "{id},two_disk,0,{},{ours_outside},{l_ours:.3}",
            emb.num_triangles()
        );
    }
    Ok(())
}

fn endpoint_link_ratio(positions: &[Point], targets: &[Point], range: f64) -> f64 {
    let g = UnitDiskGraph::new(positions, range);
    let links = g.links();
    if links.is_empty() {
        return 1.0;
    }
    links
        .iter()
        .filter(|&&(i, j)| targets[i].distance(targets[j]) <= range)
        .count() as f64
        / links.len() as f64
}
