//! Ablation: time-sampling resolution of `e_ij(t)`. The stable-link
//! ratio and global-connectivity metrics are evaluated on sampled
//! trajectories; for synchronized straight-line motion the inter-robot
//! distance is convex in `t`, so the measured metrics should already be
//! stable at coarse sampling. This harness verifies that.
//!
//! ```sh
//! cargo run --release -p anr-bench --bin ablation_sampling
//! ```

use anr_bench::{scenario_problem, BenchError};
use anr_march::{march, MarchConfig, Method};

fn main() -> Result<(), BenchError> {
    println!("scenario,time_samples,stable_link_ratio,global_connectivity,total_distance_m");
    for id in [1u8, 3, 6] {
        let problem = scenario_problem(id, 30.0)?;
        for samples in [2usize, 5, 10, 25, 50, 100, 200] {
            let config = MarchConfig {
                time_samples: samples,
                ..Default::default()
            };
            let out = march(&problem, Method::MaxStableLinks, &config)?;
            println!(
                "{},{},{:.4},{},{:.1}",
                id,
                samples,
                out.metrics.stable_link_ratio,
                out.metrics.global_connectivity,
                out.metrics.total_distance,
            );
        }
    }
    Ok(())
}
