//! Ablation: boundary parametrization of the harmonic map. The paper's
//! distributed protocol distributes boundary vertices uniformly by hop
//! count; chord-length parametrization respects boundary geometry
//! instead. Compare L/D across scenarios.
//!
//! ```sh
//! cargo run --release -p anr-bench --bin ablation_boundary_param
//! ```

use anr_bench::{scenario_problem, BenchError};
use anr_harmonic::{BoundaryParam, HarmonicConfig};
use anr_march::{march, MarchConfig, Method};

fn main() -> Result<(), BenchError> {
    println!("scenario,boundary_param,stable_link_ratio,total_distance_m,global_connectivity");
    for id in 1..=7u8 {
        let problem = scenario_problem(id, 30.0)?;
        for (name, boundary) in [
            ("hop_uniform", BoundaryParam::HopUniform),
            ("chord_length", BoundaryParam::ChordLength),
        ] {
            let config = MarchConfig {
                harmonic: HarmonicConfig {
                    boundary,
                    ..Default::default()
                },
                ..Default::default()
            };
            let out = march(&problem, Method::MaxStableLinks, &config)?;
            println!(
                "{},{},{:.4},{:.1},{}",
                id,
                name,
                out.metrics.stable_link_ratio,
                out.metrics.total_distance,
                out.metrics.global_connectivity,
            );
        }
    }
    Ok(())
}
