//! Ablation: the energy framing of the paper's link-preservation
//! argument. Evaluates every method under three energy models — motion
//! dominated, balanced (default), and pairing dominated — and reports
//! total joules per scenario.
//!
//! ```sh
//! cargo run --release -p anr-bench --bin ablation_energy
//! ```

use anr_bench::{run_all_methods, scenario_problem, BenchError};
use anr_march::{EnergyModel, MarchConfig};

fn main() -> Result<(), BenchError> {
    let models = [
        (
            "motion_dominated",
            EnergyModel {
                motion_cost_per_meter: 10.0,
                link_setup_cost: 5.0,
                idle_cost_per_robot: 0.0,
            },
        ),
        ("balanced_default", EnergyModel::default()),
        (
            "pairing_dominated",
            EnergyModel {
                motion_cost_per_meter: 0.5,
                link_setup_cost: 500.0,
                idle_cost_per_robot: 0.0,
            },
        ),
    ];

    println!("scenario,model,method,motion_j,link_maintenance_j,total_j");
    for id in [1u8, 3, 7] {
        let problem = scenario_problem(id, 30.0)?;
        let results = run_all_methods(&problem, &MarchConfig::default())?;
        for (model_name, model) in &models {
            for (method, outcome) in &results {
                let report = model.evaluate(&outcome.metrics, problem.num_robots());
                println!(
                    "{},{},{},{:.0},{:.0},{:.0}",
                    id,
                    model_name,
                    method,
                    report.motion,
                    report.link_maintenance,
                    report.total(),
                );
            }
        }
    }
    Ok(())
}
