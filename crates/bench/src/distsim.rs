//! n-scaling trajectory of the discrete-event engine.
//!
//! [`run_distsim_bench`] times `anr-eventsim` protocol runs on square
//! lattice deployments of 10⁴ and ~10⁵ robots (10⁶ behind
//! [`DistsimBenchOptions::large`]), the checkpoint save/restore path at
//! every size (verifying the resumed run stays byte-identical), and a
//! ~10⁵-robot fault sweep on the event engine. The result is a
//! deterministic-schema JSON document (`BENCH_distsim.json` at the repo
//! root) plus the 10⁴-robot checkpoint bytes as a reproducible
//! artifact.
//!
//! Flooding is deliberately absent from the scaling series: every
//! flooding participant keeps `O(n)` state, so the protocol itself —
//! not the engine — is the wall at these sizes. The hop field and the
//! boundary loop are the scalable representatives.

use crate::BenchError;
use anr_distsim::snapshot::Persist;
use anr_distsim::FaultPlan;
use anr_eventsim::{
    run_event_boundary_loop, run_event_hop_field, EventNode, EventSim, ExplicitTopology,
};
use anr_geom::Point;
use anr_march::{run_fault_sweep, SweepConfig, SweepEngine, SweepProtocols};
use anr_netgraph::robust::{RetransmitConfig, RobustHopFieldNode};
use anr_netgraph::UnitDiskGraph;

use crate::timing::median_ms;

/// Lattice pitch in meters; with an 80 m range each robot hears its
/// 8-neighborhood (55√2 ≈ 77.8 < 80).
const PITCH: f64 = 55.0;
/// Communication range in meters.
const RANGE: f64 = 80.0;

/// What to bench and how hard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistsimBenchOptions {
    /// Smoke mode: one repeat per timing — fast enough for CI.
    pub smoke: bool,
    /// Timed repetitions per stage; the median is reported.
    pub repeats: usize,
    /// Include the 10⁶-robot series (minutes, not seconds).
    pub large: bool,
}

/// One protocol at one swarm size.
#[derive(Debug, Clone, PartialEq)]
pub struct DistsimSeries {
    /// Protocol name (`"hop_field"`, `"boundary_loop"`).
    pub protocol: &'static str,
    /// Participants (swarm size; ring length for the boundary loop).
    pub robots: usize,
    /// Rounds the run took to settle and drain.
    pub rounds: usize,
    /// Messages accepted by the fault channel.
    pub sent: usize,
    /// Median wall time of the full run, milliseconds.
    pub run_ms: f64,
    /// Median wall time of one mid-run [`EventSim::save`], ms.
    pub save_ms: f64,
    /// Median wall time of one [`EventSim::restore`], ms.
    pub restore_ms: f64,
    /// Size of the mid-run snapshot, bytes.
    pub ckpt_bytes: usize,
    /// Did the restored run stay byte-identical to the uninterrupted
    /// one after both advanced the same number of rounds?
    pub resume_identical: bool,
}

/// The event-engine fault sweep timing.
#[derive(Debug, Clone, PartialEq)]
pub struct DistsimSweepTiming {
    /// Robots in the swept deployment.
    pub robots: usize,
    /// Grid cells per protocol.
    pub cells: usize,
    /// Cells whose protocol run converged within the round budget.
    pub converged_cells: usize,
    /// Wall time of the whole sweep, milliseconds.
    pub total_ms: f64,
}

/// The full distsim benchmark trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct DistsimBenchReport {
    /// Logical cores of the machine the numbers were taken on.
    pub cores: usize,
    /// Repeats per timing.
    pub repeats: usize,
    /// Was this a smoke run?
    pub smoke: bool,
    /// Was the 10⁶-robot series included?
    pub large: bool,
    /// One entry per (protocol × size).
    pub series: Vec<DistsimSeries>,
    /// The ~10⁵-robot event-engine fault sweep.
    pub sweep: DistsimSweepTiming,
    /// The 10⁴-robot hop-field mid-run snapshot — a reproducible
    /// checkpoint artifact (`anr-eventsim-ckpt/1` bytes).
    pub checkpoint_artifact: Vec<u8>,
}

/// Square lattice of `side × side` robots at [`PITCH`] spacing.
fn lattice(side: usize) -> Vec<Point> {
    (0..side * side)
        .map(|i| Point::new((i % side) as f64 * PITCH, (i / side) as f64 * PITCH))
        .collect()
}

/// Times a mid-run checkpoint round trip: `save` and `restore` medians,
/// then both the original and the restored simulator advance `h2` more
/// rounds and their snapshots are compared byte for byte.
fn ckpt_roundtrip<N>(
    mk_nodes: impl Fn() -> Vec<N>,
    adjacency: &[Vec<usize>],
    plan: FaultPlan,
    h1: usize,
    h2: usize,
    repeats: usize,
) -> Result<(f64, f64, usize, bool, Vec<u8>), BenchError>
where
    N: EventNode + Persist,
    N::Msg: Persist,
{
    let topology = ExplicitTopology::new(adjacency.to_vec())?;
    let mut sim = EventSim::new(mk_nodes(), topology, plan)?;
    sim.run_rounds(h1)?;
    let (save_ms, bytes) = median_ms(repeats, || sim.save())?;
    let restore_topology = ExplicitTopology::new(adjacency.to_vec())?;
    let (restore_ms, restored) = median_ms(repeats, || {
        EventSim::<N, _>::restore(&bytes, restore_topology.clone())
    })?;
    let mut restored = restored?;
    sim.run_rounds(h2)?;
    restored.run_rounds(h2)?;
    let resume_identical = sim.save() == restored.save();
    Ok((save_ms, restore_ms, bytes.len(), resume_identical, bytes))
}

/// Hop-field series at one size; returns the entry and the mid-run
/// checkpoint bytes.
fn hop_field_series(side: usize, repeats: usize) -> Result<(DistsimSeries, Vec<u8>), BenchError> {
    let positions = lattice(side);
    let n = positions.len();
    let adjacency = UnitDiskGraph::new(&positions, RANGE).adjacency().to_vec();
    let sources: Vec<bool> = (0..n).map(|i| i == 0).collect();
    let cfg = RetransmitConfig::default();
    let plan = FaultPlan::reliable(42).with_loss(0.02);
    let max_rounds = 40 * side + 400;

    let (run_ms, outcome) = median_ms(repeats, || {
        run_event_hop_field(&sources, &adjacency, plan.clone(), cfg, max_rounds)
    })?;
    let outcome = outcome?;

    let (save_ms, restore_ms, ckpt_bytes, resume_identical, bytes) = ckpt_roundtrip(
        || {
            sources
                .iter()
                .enumerate()
                .map(|(i, &is_source)| {
                    RobustHopFieldNode::new(is_source, adjacency[i].clone(), cfg)
                })
                .collect()
        },
        &adjacency,
        plan,
        side / 2 + 1,
        side,
        repeats,
    )?;

    Ok((
        DistsimSeries {
            protocol: "hop_field",
            robots: n,
            rounds: outcome.stats.rounds,
            sent: outcome.stats.sent,
            run_ms,
            save_ms,
            restore_ms,
            ckpt_bytes,
            resume_identical,
        },
        bytes,
    ))
}

/// Boundary-loop series over the lattice's perimeter ring.
fn boundary_loop_series(side: usize, repeats: usize) -> Result<DistsimSeries, BenchError> {
    let ring = (4 * (side - 1)).max(3);
    let ids: Vec<usize> = (0..ring).collect();
    let cfg = RetransmitConfig::default();
    // The token must survive ~2·ring consecutive hops, so the loop runs
    // reliably; its cost model (one live token, not a flood) is what is
    // being measured.
    let plan = FaultPlan::reliable(42);
    let max_rounds = 10 * ring + 400;
    let (run_ms, outcome) = median_ms(repeats, || {
        run_event_boundary_loop(&ids, plan.clone(), cfg, max_rounds)
    })?;
    let outcome = outcome?;

    let restart_after = (ring + 2) * (cfg.interval + 1);
    let adjacency: Vec<Vec<usize>> = (0..ring)
        .map(|i| vec![(i + ring - 1) % ring, (i + 1) % ring])
        .collect();
    let (save_ms, restore_ms, ckpt_bytes, resume_identical, _) = ckpt_roundtrip(
        || {
            (0..ring)
                .map(|i| {
                    anr_netgraph::robust::RobustBoundaryLoopNode::new(
                        i,
                        i == 0,
                        (i + 1) % ring,
                        cfg,
                        restart_after,
                        16,
                    )
                })
                .collect()
        },
        &adjacency,
        plan,
        ring / 2 + 1,
        ring,
        repeats,
    )?;

    Ok(DistsimSeries {
        protocol: "boundary_loop",
        robots: ring,
        rounds: outcome.stats.rounds,
        sent: outcome.stats.sent,
        run_ms,
        save_ms,
        restore_ms,
        ckpt_bytes,
        resume_identical,
    })
}

/// The ~10⁵-robot fault sweep on the event engine (hop field only).
fn event_sweep(side: usize) -> Result<DistsimSweepTiming, BenchError> {
    let positions = lattice(side);
    let config = SweepConfig {
        loss_rates: vec![0.0, 0.05],
        crash_counts: vec![0, 10],
        seed: 42,
        max_rounds: 4000,
        retransmit: RetransmitConfig::default(),
        workers: 0,
        engine: SweepEngine::Event,
        protocols: SweepProtocols {
            flooding: false,
            hop_field: true,
        },
    };
    let cells = config.loss_rates.len() * config.crash_counts.len();
    let (total_ms, report) = median_ms(1, || run_fault_sweep(&positions, RANGE, &config))?;
    let report = report?;
    let converged_cells = report
        .protocols
        .iter()
        .flat_map(|g| &g.cells)
        .filter(|c| c.converged)
        .count();
    Ok(DistsimSweepTiming {
        robots: positions.len(),
        cells,
        converged_cells,
        total_ms,
    })
}

/// [`run_distsim_bench`] over explicit lattice sides — the test-size
/// hook; the public entry point picks the 10⁴/10⁵/10⁶ sides.
fn run_with_sides(
    opts: &DistsimBenchOptions,
    sides: &[usize],
    sweep_side: usize,
) -> Result<DistsimBenchReport, BenchError> {
    if opts.repeats == 0 {
        return Err(BenchError::ZeroRepeats);
    }
    let repeats = if opts.smoke { 1 } else { opts.repeats };
    let mut series = Vec::new();
    let mut artifact = Vec::new();
    for (i, &side) in sides.iter().enumerate() {
        let (hop, bytes) = hop_field_series(side, repeats)?;
        if i == 0 {
            artifact = bytes;
        }
        series.push(hop);
        series.push(boundary_loop_series(side, repeats)?);
    }
    let sweep = event_sweep(sweep_side)?;
    Ok(DistsimBenchReport {
        cores: anr_par::default_workers(),
        repeats,
        smoke: opts.smoke,
        large: opts.large,
        series,
        sweep,
        checkpoint_artifact: artifact,
    })
}

/// Runs the distsim scaling benchmark: 10⁴ and ~10⁵ robots (plus 10⁶
/// with [`DistsimBenchOptions::large`]), a checkpoint round trip per
/// size, and a ~10⁵-robot event-engine fault sweep.
///
/// # Errors
///
/// Propagates simulator and checkpoint failures; rejects zero repeats.
pub fn run_distsim_bench(opts: &DistsimBenchOptions) -> Result<DistsimBenchReport, BenchError> {
    // Lattice sides: 100² = 10⁴, 316² ≈ 10⁵, 1000² = 10⁶.
    let mut sides = vec![100, 316];
    if opts.large {
        sides.push(1000);
    }
    run_with_sides(opts, &sides, 316)
}

fn json_ms(x: f64) -> String {
    format!("{x:.3}")
}

impl DistsimBenchReport {
    /// Serializes the report as a self-contained JSON document
    /// (`anr-bench-distsim/1`). The checkpoint artifact is binary and
    /// rides separately; only its size appears here.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"anr-bench-distsim/1\",\n");
        s.push_str(&format!("  \"cores\": {},\n", self.cores));
        s.push_str(&format!("  \"repeats\": {},\n", self.repeats));
        s.push_str(&format!("  \"smoke\": {},\n", self.smoke));
        s.push_str(&format!("  \"large\": {},\n", self.large));
        s.push_str(&format!(
            "  \"checkpoint_artifact_bytes\": {},\n",
            self.checkpoint_artifact.len()
        ));
        s.push_str("  \"series\": [\n");
        for (i, e) in self.series.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"protocol\": \"{}\", \"robots\": {}, \"rounds\": {}, \"sent\": {}, \
                 \"run_ms\": {}, \"save_ms\": {}, \"restore_ms\": {}, \"ckpt_bytes\": {}, \
                 \"resume_identical\": {}}}{}\n",
                e.protocol,
                e.robots,
                e.rounds,
                e.sent,
                json_ms(e.run_ms),
                json_ms(e.save_ms),
                json_ms(e.restore_ms),
                e.ckpt_bytes,
                e.resume_identical,
                if i + 1 < self.series.len() { "," } else { "" },
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"sweep\": {{\"engine\": \"event\", \"robots\": {}, \"cells\": {}, \
             \"converged_cells\": {}, \"total_ms\": {}}}\n",
            self.sweep.robots,
            self.sweep.cells,
            self.sweep.converged_cells,
            json_ms(self.sweep.total_ms),
        ));
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anr_eventsim::CKPT_MAGIC;

    #[test]
    fn tiny_distsim_bench_runs_and_serializes() {
        // Test-sized lattices; the real sizes are exercised by the CI
        // bench job in release mode.
        let report = run_with_sides(
            &DistsimBenchOptions {
                smoke: true,
                repeats: 1,
                large: false,
            },
            &[10, 14],
            10,
        )
        .unwrap();
        assert_eq!(report.series.len(), 4);
        for e in &report.series {
            assert!(e.resume_identical, "{} n={}", e.protocol, e.robots);
            assert!(e.rounds > 0 && e.sent > 0, "{} n={}", e.protocol, e.robots);
            assert!(e.ckpt_bytes > 0);
        }
        assert_eq!(report.sweep.cells, 4);
        assert_eq!(
            report.sweep.converged_cells, 4,
            "tiny sweep must converge in every cell"
        );
        assert!(report
            .checkpoint_artifact
            .starts_with(CKPT_MAGIC.as_bytes()));
        let json = report.to_json();
        for key in [
            "\"schema\": \"anr-bench-distsim/1\"",
            "\"protocol\": \"hop_field\"",
            "\"protocol\": \"boundary_loop\"",
            "\"resume_identical\": true",
            "\"engine\": \"event\"",
            "\"checkpoint_artifact_bytes\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn distsim_bench_is_deterministic_modulo_timing() {
        let opts = DistsimBenchOptions {
            smoke: true,
            repeats: 1,
            large: false,
        };
        let a = run_with_sides(&opts, &[10], 10).unwrap();
        let b = run_with_sides(&opts, &[10], 10).unwrap();
        assert_eq!(a.checkpoint_artifact, b.checkpoint_artifact);
        let strip = |r: &DistsimBenchReport| -> Vec<(String, usize, usize, usize, bool)> {
            r.series
                .iter()
                .map(|e| {
                    (
                        e.protocol.to_string(),
                        e.robots,
                        e.rounds,
                        e.sent,
                        e.resume_identical,
                    )
                })
                .collect()
        };
        assert_eq!(strip(&a), strip(&b));
    }
}
