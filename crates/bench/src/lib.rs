//! # anr-bench — experiment harness for the ICDCS 2016 reproduction
//!
//! Shared plumbing for the per-figure experiment binaries (see
//! `src/bin/`): scenario → problem construction, running all four
//! methods, and CSV emission. Every table and figure of the paper's
//! evaluation maps to one binary:
//!
//! | target | reproduces |
//! |---|---|
//! | `fig2_pipeline` | Fig. 2 pipeline stages (SVG + stage stats) |
//! | `fig3_scenarios` | Fig. 3 rows 4–5 (scenarios 1, 2, 4, 5) |
//! | `fig4_scenario3` | Fig. 4 (scenario 3, flower pond) |
//! | `fig5_hole_to_hole` | Fig. 5 (scenarios 6, 7) |
//! | `table1_connectivity` | Table I (global connectivity Y/N) |
//! | `fig6_density` | Fig. 6 (density-adjusted deployment) |
//! | `ablation_*` | design-choice ablations from DESIGN.md |
//! | `fault_sweep` | protocol survival under loss and churn (JSON grid) |

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

pub mod distsim;
pub mod timing;

pub use distsim::{
    run_distsim_bench, DistsimBenchOptions, DistsimBenchReport, DistsimSeries, DistsimSweepTiming,
};
pub use timing::{
    parse_march_stage_medians, run_pipeline_bench, stage_regressions, BenchOptions,
    PipelineBenchReport, ScaleTierTiming,
};

use anr_march::{
    direct_translation, hungarian_direct, march, MarchConfig, MarchError, MarchOutcome,
    MarchProblem, Method,
};
use anr_scenarios::{build_scenario, ScenarioError, ScenarioParams};
use std::error::Error;
use std::fmt;

/// Experiment-level error.
#[derive(Debug)]
#[non_exhaustive]
pub enum BenchError {
    /// Scenario construction failed.
    Scenario(ScenarioError),
    /// A method run failed.
    March(MarchError),
    /// A fault-sweep simulation failed.
    Sim(anr_distsim::SimError),
    /// A checkpoint save/restore round trip failed.
    Ckpt(anr_eventsim::CkptError),
    /// The benchmark was asked for zero timed repetitions.
    ZeroRepeats,
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Scenario(e) => write!(f, "scenario: {e}"),
            BenchError::March(e) => write!(f, "march: {e}"),
            BenchError::Sim(e) => write!(f, "simulation: {e}"),
            BenchError::Ckpt(e) => write!(f, "checkpoint: {e}"),
            BenchError::ZeroRepeats => write!(f, "repeats must be at least 1"),
        }
    }
}

impl Error for BenchError {}

impl From<ScenarioError> for BenchError {
    fn from(e: ScenarioError) -> Self {
        BenchError::Scenario(e)
    }
}

impl From<MarchError> for BenchError {
    fn from(e: MarchError) -> Self {
        BenchError::March(e)
    }
}

impl From<anr_distsim::SimError> for BenchError {
    fn from(e: anr_distsim::SimError) -> Self {
        BenchError::Sim(e)
    }
}

impl From<anr_eventsim::CkptError> for BenchError {
    fn from(e: anr_eventsim::CkptError) -> Self {
        BenchError::Ckpt(e)
    }
}

/// Builds the marching problem for scenario `id` at the given separation
/// (in communication ranges).
///
/// # Errors
///
/// Propagates scenario/problem construction failures.
pub fn scenario_problem(id: u8, separation_ranges: f64) -> Result<MarchProblem, BenchError> {
    let s = build_scenario(
        id,
        &ScenarioParams {
            separation_ranges,
            ..Default::default()
        },
    )?;
    Ok(MarchProblem::with_lattice_deployment(
        s.m1, s.m2, s.robots, s.range,
    )?)
}

/// Like [`scenario_problem`], with an explicit robot count (the bench
/// tiers: 144 smoke, 1296 full, 10_000 large).
///
/// # Errors
///
/// Propagates scenario/problem construction failures.
pub fn scenario_problem_sized(
    id: u8,
    separation_ranges: f64,
    robots: usize,
) -> Result<MarchProblem, BenchError> {
    let s = build_scenario(
        id,
        &ScenarioParams {
            robots,
            separation_ranges,
            ..Default::default()
        },
    )?;
    Ok(MarchProblem::with_lattice_deployment(
        s.m1, s.m2, s.robots, s.range,
    )?)
}

/// The four evaluated methods, in the paper's presentation order.
pub const METHOD_NAMES: [&str; 4] = ["ours_a", "ours_b", "direct_translation", "hungarian"];

/// Runs all four methods on `problem`, in [`METHOD_NAMES`] order.
///
/// # Errors
///
/// Propagates the first method failure.
pub fn run_all_methods(
    problem: &MarchProblem,
    config: &MarchConfig,
) -> Result<Vec<(&'static str, MarchOutcome)>, BenchError> {
    Ok(vec![
        ("ours_a", march(problem, Method::MaxStableLinks, config)?),
        ("ours_b", march(problem, Method::MinMovingDistance, config)?),
        ("direct_translation", direct_translation(problem, config)?),
        ("hungarian", hungarian_direct(problem, config)?),
    ])
}

/// Prints the CSV header used by the sweep binaries.
pub fn print_sweep_header() {
    println!("scenario,separation_ranges,method,total_distance_m,distance_ratio_vs_hungarian,stable_link_ratio,global_connectivity");
}

/// One measured point of a separation sweep.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SweepRow {
    /// Scenario id (1–7).
    pub(crate) scenario: u8,
    /// FoI separation in communication ranges.
    pub(crate) separation: f64,
    /// Method name (see [`METHOD_NAMES`]).
    pub(crate) method: &'static str,
    /// Total moving distance `D` in metres.
    pub(crate) distance: f64,
    /// `D` relative to the Hungarian optimum at the same separation.
    pub(crate) ratio: f64,
    /// Total stable link ratio `L`.
    pub(crate) link_ratio: f64,
    /// Global connectivity `C`.
    pub(crate) connected: u8,
}

/// Runs the full four-method comparison over a separation sweep,
/// returning one row per (separation, method).
///
/// # Errors
///
/// Propagates scenario/method failures.
pub(crate) fn sweep_scenario_rows(
    id: u8,
    separations: &[f64],
    config: &MarchConfig,
) -> Result<Vec<SweepRow>, BenchError> {
    let mut rows = Vec::new();
    for &sep in separations {
        let problem = scenario_problem(id, sep)?;
        let results = run_all_methods(&problem, config)?;
        let hungarian_d = results
            .iter()
            .find(|(name, _)| *name == "hungarian")
            .map(|(_, o)| o.metrics.total_distance)
            .expect("hungarian always present");
        for (name, outcome) in &results {
            rows.push(SweepRow {
                scenario: id,
                separation: sep,
                method: name,
                distance: outcome.metrics.total_distance,
                ratio: outcome.metrics.total_distance / hungarian_d,
                link_ratio: outcome.metrics.stable_link_ratio,
                connected: outcome.metrics.global_connectivity,
            });
        }
    }
    Ok(rows)
}

/// Prints sweep rows as CSV (header via [`print_sweep_header`]).
pub(crate) fn print_rows(rows: &[SweepRow]) {
    for r in rows {
        println!(
            "{},{},{},{:.1},{:.4},{:.4},{}",
            r.scenario, r.separation, r.method, r.distance, r.ratio, r.link_ratio, r.connected,
        );
    }
}

/// Writes the two per-scenario SVG charts (the paper's rows 4 and 5:
/// D/D_hungarian and L versus separation) into `dir`.
///
/// # Errors
///
/// Propagates I/O errors.
pub(crate) fn write_sweep_charts(
    id: u8,
    rows: &[SweepRow],
    dir: &std::path::Path,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let series = |metric: fn(&SweepRow) -> f64, method: &str| -> Vec<(f64, f64)> {
        rows.iter()
            .filter(|r| r.scenario == id && r.method == method)
            .map(|r| (r.separation, metric(r)))
            .collect()
    };
    let labels = [
        ("ours (a)", "ours_a"),
        ("ours (b)", "ours_b"),
        ("direct translation", "direct_translation"),
        ("Hungarian", "hungarian"),
    ];

    let mut dchart = anr_viz::LineChart::new(
        &format!("Scenario {id}: total moving distance vs. separation"),
        "separation (× communication range)",
        "D / D_hungarian",
    );
    for (label, method) in labels {
        dchart.add_series(label, series(|r| r.ratio, method));
    }
    dchart.save(dir.join(format!("scenario{id}_distance.svg")))?;

    let mut lchart = anr_viz::LineChart::new(
        &format!("Scenario {id}: total stable link ratio vs. separation"),
        "separation (× communication range)",
        "L",
    );
    lchart.y_from_zero(true);
    for (label, method) in labels {
        lchart.add_series(label, series(|r| r.link_ratio, method));
    }
    lchart.save(dir.join(format!("scenario{id}_link_ratio.svg")))?;
    Ok(())
}

/// Runs the comparison sweep, prints CSV and — when `--charts <dir>` is
/// passed — writes the per-scenario SVG charts.
///
/// # Errors
///
/// Propagates scenario/method failures; chart I/O errors are reported to
/// stderr without failing the run.
pub fn sweep_scenario(id: u8, separations: &[f64], config: &MarchConfig) -> Result<(), BenchError> {
    let rows = sweep_scenario_rows(id, separations, config)?;
    print_rows(&rows);
    if let Some(dir) = charts_flag() {
        if let Err(e) = write_sweep_charts(id, &rows, &dir) {
            eprintln!("warning: failed to write charts to {}: {e}", dir.display());
        }
    }
    Ok(())
}

/// Runs the comparison sweep for several scenarios concurrently (the
/// scenarios fan out over [`anr_par::par_map`]; each sweep itself is
/// serial), then prints CSV rows in scenario order and — when
/// `--charts <dir>` is passed — writes the per-scenario SVG charts.
/// The output is identical, byte for byte, to calling
/// [`sweep_scenario`] once per id.
///
/// # Errors
///
/// Propagates the first scenario/method failure, in id order.
pub fn sweep_scenarios_parallel(
    ids: &[u8],
    separations: &[f64],
    config: &MarchConfig,
) -> Result<(), BenchError> {
    let results = anr_par::par_map(ids, 0, |&id| sweep_scenario_rows(id, separations, config));
    for (i, result) in results.into_iter().enumerate() {
        let rows = result?;
        print_rows(&rows);
        if let Some(dir) = charts_flag() {
            if let Err(e) = write_sweep_charts(ids[i], &rows, &dir) {
                eprintln!("warning: failed to write charts to {}: {e}", dir.display());
            }
        }
    }
    Ok(())
}

/// Parses `--charts <dir>` from the CLI arguments.
pub fn charts_flag() -> Option<std::path::PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--charts")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from)
}

/// The paper's separation sweep: 10×–100× the communication range.
pub fn paper_separations() -> Vec<f64> {
    (1..=10).map(|k| 10.0 * k as f64).collect()
}

/// A shorter sweep for quick runs (`--quick`).
pub fn quick_separations() -> Vec<f64> {
    vec![10.0, 40.0, 100.0]
}

/// Returns true when `--quick` is among the CLI arguments.
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Parses `--scenario <id>` from the CLI arguments.
pub fn scenario_flag() -> Option<u8> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--scenario")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_problem_builds() {
        let p = scenario_problem(1, 15.0).unwrap();
        assert_eq!(p.num_robots(), 144);
    }

    #[test]
    fn run_all_methods_order() {
        let p = scenario_problem(1, 12.0).unwrap();
        let results = run_all_methods(&p, &MarchConfig::default()).unwrap();
        let names: Vec<&str> = results.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, METHOD_NAMES.to_vec());
    }

    #[test]
    fn separations_cover_paper_range() {
        let s = paper_separations();
        assert_eq!(s.first(), Some(&10.0));
        assert_eq!(s.last(), Some(&100.0));
        assert_eq!(s.len(), 10);
    }
}
