//! Determinism pins on the real bench scenarios.
//!
//! The unit tests in `anr-coverage`, `anr-harmonic` and `anr-march` pin
//! the accelerated paths (bucket-grid Lloyd assignment, batched rotation
//! search, parallel audit) against their reference implementations on
//! synthetic inputs; these tests repeat the pins on every bench scenario
//! geometry — holes, concavities and detours included — at the smoke
//! robot count, so a fast path that only agrees on easy inputs cannot
//! slip through.

use anr_bench::scenario_problem_sized;
use anr_coverage::GridPartition;
use anr_harmonic::{fill_holes, harmonic_map_to_disk, DiskOverlay, HarmonicConfig, Solver};
use anr_march::{audit_piecewise_with_workers, march, MarchConfig, MarchProblem, Method};
use anr_netgraph::{extract_triangulation, UnitDiskGraph};
use anr_trace::Tracer;

const ROBOTS: usize = 144;
const SEPARATION: f64 = 10.0;

fn scenario_problem(id: u8) -> MarchProblem {
    scenario_problem_sized(id, SEPARATION, ROBOTS).unwrap()
}

/// The bucket-grid sample assignment equals the brute-force scan,
/// bucket by bucket, on every scenario's target FoI — the exact pin the
/// guarded Lloyd iteration relies on.
#[test]
fn lloyd_assignment_matches_brute_force_on_every_scenario() {
    for id in 1..=7u8 {
        let problem = scenario_problem(id);
        let config = MarchConfig::default();
        let spacing = config.resolve_mesh_spacing(problem.m2.area(), problem.num_robots());
        let partition = GridPartition::new(&problem.m2, spacing * 0.2);
        assert_eq!(
            partition.assign(&problem.positions),
            partition.assign_brute_force(&problem.positions),
            "scenario {id}: grid assignment diverged from brute force"
        );
    }
}

/// The batched (worker-fanned) rotation search lands on the same
/// `(theta, value, evaluations)` as the serial bisection on the real
/// stable-link objective, scenario by scenario.
#[test]
fn rotation_batch_matches_serial_on_every_scenario() {
    for id in 1..=7u8 {
        let problem = scenario_problem(id);
        let n = problem.num_robots();
        let config = MarchConfig::default();
        let spacing = config.resolve_mesh_spacing(problem.m2.area(), n);
        let pcg_cfg = HarmonicConfig {
            solver: Solver::Pcg,
            ..HarmonicConfig::default()
        };

        // Same construction as the pipeline's rotation stage.
        let foi2 = anr_mesh::FoiMesher::new(spacing).mesh(&problem.m2).unwrap();
        let filled2 = fill_holes(foi2.mesh()).unwrap();
        let disk2 = harmonic_map_to_disk(filled2.mesh(), &pcg_cfg).unwrap();
        let t_mesh = extract_triangulation(&problem.positions, problem.range).unwrap();
        let filled_t = fill_holes(&t_mesh).unwrap();
        let disk_t = harmonic_map_to_disk(filled_t.mesh(), &pcg_cfg).unwrap();
        let robot_disk: Vec<_> = (0..n).map(|v| disk_t.position(v)).collect();
        let overlay = DiskOverlay::new(
            filled2.mesh(),
            disk2.positions(),
            filled2.virtual_vertices(),
        );
        let links = UnitDiskGraph::new(&problem.positions, problem.range).links();
        let locator = anr_mesh::PointLocator::new(overlay.disk_mesh());
        let objective = |theta: f64| {
            let q = overlay.map_all_with(&locator, &robot_disk, theta);
            if links.is_empty() {
                return 1.0;
            }
            links
                .iter()
                .filter(|&&(i, j)| q[i].position.distance(q[j].position) <= problem.range)
                .count() as f64
                / links.len() as f64
        };

        let serial = config.rotation.maximize(objective);
        let batched = config
            .rotation
            .maximize_batch(|thetas| anr_par::par_map(thetas, 0, |&theta| objective(theta)));
        assert_eq!(
            serial, batched,
            "scenario {id}: batched rotation search diverged from serial"
        );
    }
}

/// The parallel audit report is identical — every field, every violation
/// interval — at workers 1, 2 and 8, on real march timelines from a
/// simply-connected scenario and a hole-detour scenario.
#[test]
fn audit_identical_across_worker_counts() {
    for id in [1u8, 4] {
        let problem = scenario_problem(id);
        let config = MarchConfig::default();
        let outcome = march(&problem, Method::MaxStableLinks, &config).unwrap();
        let rows = &outcome.timeline;
        assert!(rows.len() >= 2, "scenario {id}: march produced no motion");
        let times: Vec<f64> = (0..rows.len())
            .map(|k| k as f64 / (rows.len() - 1) as f64)
            .collect();
        let tracer = Tracer::disabled();
        let reference =
            audit_piecewise_with_workers(rows, &times, problem.range, 1, &tracer).unwrap();
        for workers in [2usize, 8] {
            let report =
                audit_piecewise_with_workers(rows, &times, problem.range, workers, &tracer)
                    .unwrap();
            assert_eq!(
                reference, report,
                "scenario {id}: audit report changed at {workers} workers"
            );
        }
    }
}
