//! Criterion micro-benchmarks of the computational kernels: Delaunay
//! triangulation, harmonic-map convergence, Hungarian assignment,
//! overlay mapping, Lloyd iteration, and the full pipeline.

use anr_assign::{euclidean_costs, hungarian};
use anr_bench::scenario_problem;
use anr_coverage::{run_lloyd, Density, GridPartition, LloydConfig};
use anr_geom::Point;
use anr_harmonic::{fill_holes, harmonic_map_to_disk, DiskOverlay, HarmonicConfig};
use anr_march::{march, MarchConfig, Method};
use anr_mesh::{delaunay, FoiMesher};
use anr_netgraph::{extract_triangulation, UnitDiskGraph};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn pseudo_random_points(n: usize, seed: u64, span: f64) -> Vec<Point> {
    let mut s = seed;
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (s >> 33) as f64 / (1u64 << 31) as f64
    };
    (0..n)
        .map(|_| Point::new(next() * span, next() * span))
        .collect()
}

fn bench_delaunay(c: &mut Criterion) {
    let pts144 = pseudo_random_points(144, 7, 600.0);
    let pts500 = pseudo_random_points(500, 9, 1200.0);
    c.bench_function("delaunay_144", |b| {
        b.iter(|| delaunay(black_box(&pts144)).unwrap())
    });
    c.bench_function("delaunay_500", |b| {
        b.iter(|| delaunay(black_box(&pts500)).unwrap())
    });
}

fn bench_unit_disk_graph(c: &mut Criterion) {
    let problem = scenario_problem(1, 30.0).unwrap();
    c.bench_function("unit_disk_graph_144", |b| {
        b.iter(|| UnitDiskGraph::new(black_box(&problem.positions), 80.0))
    });
}

fn bench_harmonic(c: &mut Criterion) {
    let problem = scenario_problem(3, 30.0).unwrap();
    let t = extract_triangulation(&problem.positions, problem.range).unwrap();
    let filled_t = fill_holes(&t).unwrap();
    c.bench_function("harmonic_map_robot_mesh_144", |b| {
        b.iter(|| harmonic_map_to_disk(filled_t.mesh(), &HarmonicConfig::default()).unwrap())
    });

    let spacing = MarchConfig::default().resolve_mesh_spacing(problem.m2.area(), 144);
    let foi = FoiMesher::new(spacing).mesh(&problem.m2).unwrap();
    let filled = fill_holes(foi.mesh()).unwrap();
    c.bench_function("harmonic_map_foi_mesh", |b| {
        b.iter(|| harmonic_map_to_disk(filled.mesh(), &HarmonicConfig::default()).unwrap())
    });
}

fn bench_overlay_mapping(c: &mut Criterion) {
    let problem = scenario_problem(3, 30.0).unwrap();
    let t = extract_triangulation(&problem.positions, problem.range).unwrap();
    let filled_t = fill_holes(&t).unwrap();
    let disk_t = harmonic_map_to_disk(filled_t.mesh(), &HarmonicConfig::default()).unwrap();
    let robot_disk: Vec<Point> = (0..144).map(|v| disk_t.position(v)).collect();

    let spacing = MarchConfig::default().resolve_mesh_spacing(problem.m2.area(), 144);
    let foi = FoiMesher::new(spacing).mesh(&problem.m2).unwrap();
    let filled = fill_holes(foi.mesh()).unwrap();
    let disk = harmonic_map_to_disk(filled.mesh(), &HarmonicConfig::default()).unwrap();
    let overlay = DiskOverlay::new(filled.mesh(), disk.positions(), filled.virtual_vertices());

    c.bench_function("overlay_map_all_144", |b| {
        b.iter(|| overlay.map_all(black_box(&robot_disk), 1.0))
    });
}

fn bench_hungarian(c: &mut Criterion) {
    let src = pseudo_random_points(144, 21, 600.0);
    let dst = pseudo_random_points(144, 22, 600.0);
    let costs = euclidean_costs(&src, &dst).unwrap();
    c.bench_function("hungarian_144", |b| b.iter(|| hungarian(black_box(&costs))));
}

fn bench_lloyd(c: &mut Criterion) {
    let problem = scenario_problem(1, 30.0).unwrap();
    let partition = GridPartition::new(&problem.m2, 10.0);
    let cfg = LloydConfig {
        tolerance: 1.0,
        max_iterations: 1,
        ..Default::default()
    };
    c.bench_function("lloyd_iteration_144", |b| {
        b.iter(|| {
            run_lloyd(
                black_box(&problem.positions),
                &partition,
                &Density::Uniform,
                &cfg,
            )
        })
    });
}

fn bench_full_pipeline(c: &mut Criterion) {
    let problem = scenario_problem(1, 30.0).unwrap();
    let config = MarchConfig::default();
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("march_scenario1_144", |b| {
        b.iter(|| march(black_box(&problem), Method::MaxStableLinks, &config).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_delaunay,
    bench_unit_disk_graph,
    bench_harmonic,
    bench_overlay_mapping,
    bench_hungarian,
    bench_lloyd,
    bench_full_pipeline
);
criterion_main!(benches);
