//! # anr-scenarios — the paper's seven evaluation scenarios
//!
//! The ICDCS 2016 evaluation (Sec. IV) marches 144 robots with an 80 m
//! communication range through seven FoI pairs:
//!
//! | # | `M1` | `M2` | Paper area of `M2` |
//! |---|------|------|--------------------|
//! | 1 | blob, 308,261 m² | similar blob, no holes | 289,745 m² |
//! | 2 | same | elongated blob with a very different boundary | 173,057 m² |
//! | 3 | same | blob with a concave flower-shaped pond (Fig. 2d) | 239,987 m² |
//! | 4 | same | blob with one big convex hole | 233,342 m² |
//! | 5 | same | blob with multiple small holes | 253,578 m² |
//! | 6 | blob **with holes** | different blob with holes | — |
//! | 7 | another holed blob | another holed blob | — |
//!
//! The authors' hand-drawn "surface data" is not available, so each FoI
//! is generated parametrically (seeded Fourier-perturbed blobs, flower
//! holes, etc.) and scaled to the paper's exact areas — the substitution
//! documented in `DESIGN.md`. The transition distance between the FoI
//! centroids is a parameter swept from 10× to 100× the communication
//! range, as in the paper's Fig. 3.
//!
//! ## Example
//!
//! ```
//! use anr_scenarios::{build_scenario, ScenarioParams};
//!
//! let s = build_scenario(3, &ScenarioParams::default())?;
//! assert_eq!(s.m2.holes().len(), 1); // the flower pond
//! assert!((s.m2.area() - 239_987.0).abs() / 239_987.0 < 0.02);
//! # Ok::<(), anr_scenarios::ScenarioError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

mod shapes;

pub use shapes::{blob, flower};

use anr_geom::{GeomError, Point, Polygon, PolygonWithHoles, Vector};
use std::error::Error;
use std::fmt;

/// Errors raised while building scenarios.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScenarioError {
    /// Scenario IDs run from 1 to 7.
    UnknownScenario {
        /// The requested ID.
        id: u8,
    },
    /// Geometry construction failed (should not happen for the built-in
    /// shapes; indicates corrupted parameters).
    Geometry(GeomError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::UnknownScenario { id } => {
                write!(f, "scenario ids run 1..=7, got {id}")
            }
            ScenarioError::Geometry(e) => write!(f, "scenario geometry failed: {e}"),
        }
    }
}

impl Error for ScenarioError {}

impl From<GeomError> for ScenarioError {
    fn from(e: GeomError) -> Self {
        ScenarioError::Geometry(e)
    }
}

/// Parameters shared by all scenarios.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioParams {
    /// Number of robots (paper: 144).
    pub robots: usize,
    /// Communication range in metres (paper: 80).
    pub range: f64,
    /// Distance between the FoI centroids, in multiples of the
    /// communication range (paper sweeps 10–100; default 30).
    pub separation_ranges: f64,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        ScenarioParams {
            robots: 144,
            range: 80.0,
            separation_ranges: 30.0,
        }
    }
}

/// One evaluation scenario: a pair of FoIs plus the swarm parameters.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario number, 1–7.
    pub id: u8,
    /// Human-readable description.
    pub name: &'static str,
    /// The current FoI (robots deployed here).
    pub m1: PolygonWithHoles,
    /// The target FoI.
    pub m2: PolygonWithHoles,
    /// Number of robots.
    pub robots: usize,
    /// Communication range.
    pub range: f64,
}

/// The `M1` of scenarios 1–5: a blob of 308,261 m² centered at the
/// origin (paper Fig. 2a).
pub fn m1_standard() -> Result<PolygonWithHoles, ScenarioError> {
    let outer = blob(Point::ORIGIN, 308_261.0, 11, 64)?;
    Ok(PolygonWithHoles::without_holes(outer))
}

/// Builds scenario `id` (1–7) with the given parameters.
///
/// The target FoI is translated so the two centroids are
/// `params.separation_ranges × params.range` apart along +x.
///
/// # Errors
///
/// [`ScenarioError::UnknownScenario`] for ids outside 1–7.
pub fn build_scenario(id: u8, params: &ScenarioParams) -> Result<Scenario, ScenarioError> {
    let sep = params.separation_ranges * params.range;

    let (name, m1, m2): (&'static str, PolygonWithHoles, PolygonWithHoles) = match id {
        1 => (
            "non-hole to non-hole, similar boundary",
            m1_standard()?,
            PolygonWithHoles::without_holes(blob(Point::ORIGIN, 289_745.0, 23, 64)?),
        ),
        2 => (
            "non-hole to non-hole, dissimilar boundary",
            m1_standard()?,
            PolygonWithHoles::without_holes(elongated_blob(Point::ORIGIN, 173_057.0, 37)?),
        ),
        3 => (
            "non-hole to concave flower-shaped hole (Fig. 2d)",
            m1_standard()?,
            {
                let outer = blob(Point::ORIGIN, 239_987.0 * 1.06, 41, 64)?;
                let pond = flower(Point::new(30.0, 20.0), 68.0, 5, 0.35, 40)?;
                let holes = vec![pond];
                with_exact_area(outer, holes, 239_987.0)?
            },
        ),
        4 => ("non-hole to one big convex hole", m1_standard()?, {
            let outer = blob(Point::ORIGIN, 233_342.0 * 1.12, 53, 64)?;
            let hole = Polygon::regular(Point::new(-20.0, 10.0), 95.0, 20);
            with_exact_area(outer, vec![hole], 233_342.0)?
        }),
        5 => ("non-hole to multiple small holes", m1_standard()?, {
            let outer = blob(Point::ORIGIN, 253_578.0 * 1.08, 67, 64)?;
            let holes = vec![
                Polygon::regular(Point::new(-110.0, 60.0), 38.0, 12),
                Polygon::regular(Point::new(90.0, 110.0), 42.0, 12),
                Polygon::regular(Point::new(60.0, -110.0), 35.0, 12),
            ];
            with_exact_area(outer, holes, 253_578.0)?
        }),
        6 => (
            "hole to hole (single holes)",
            {
                let outer = blob(Point::ORIGIN, 308_261.0 * 1.09, 71, 64)?;
                let hole = flower(Point::new(-40.0, -20.0), 72.0, 4, 0.3, 36)?;
                with_exact_area(outer, vec![hole], 308_261.0)?
            },
            {
                let outer = blob(Point::ORIGIN, 260_000.0 * 1.10, 83, 64)?;
                let hole = Polygon::regular(Point::new(50.0, 40.0), 80.0, 16);
                with_exact_area(outer, vec![hole], 260_000.0)?
            },
        ),
        7 => (
            "hole to hole (multiple holes)",
            {
                let outer = blob(Point::ORIGIN, 308_261.0 * 1.08, 97, 64)?;
                let holes = vec![
                    Polygon::regular(Point::new(-100.0, 70.0), 40.0, 12),
                    Polygon::regular(Point::new(110.0, -60.0), 45.0, 12),
                ];
                with_exact_area(outer, holes, 308_261.0)?
            },
            {
                let outer = blob(Point::ORIGIN, 240_000.0 * 1.12, 101, 64)?;
                let holes = vec![
                    flower(Point::new(60.0, 50.0), 55.0, 5, 0.3, 36)?,
                    Polygon::regular(Point::new(-90.0, -50.0), 42.0, 12),
                ];
                with_exact_area(outer, holes, 240_000.0)?
            },
        ),
        other => return Err(ScenarioError::UnknownScenario { id: other }),
    };

    // Separate the two FoIs along +x by the requested distance.
    let shift = Vector::new(sep, 0.0) + (m1.centroid() - m2.centroid());
    let m2 = m2.translated(shift);

    Ok(Scenario {
        id,
        name,
        m1,
        m2,
        robots: params.robots,
        range: params.range,
    })
}

/// Builds all seven scenarios.
///
/// # Errors
///
/// Propagates construction errors (none for the built-in shapes).
pub fn all_scenarios(params: &ScenarioParams) -> Result<Vec<Scenario>, ScenarioError> {
    (1..=7).map(|id| build_scenario(id, params)).collect()
}

/// Elongated blob for scenario 2: strongly anisotropic so the boundary
/// shape differs a lot from `M1`.
fn elongated_blob(center: Point, area: f64, seed: u64) -> Result<Polygon, ScenarioError> {
    let base = blob(center, area, seed, 64)?;
    // Stretch ×2.2 along y, compress along x, keep the area.
    let c = base.centroid();
    let stretched = Polygon::new(
        base.vertices()
            .iter()
            .map(|p| Point::new(c.x + (p.x - c.x) / 1.5, c.y + (p.y - c.y) * 2.2))
            .collect(),
    )?;
    Ok(stretched.scaled_to_area(area))
}

/// Scales the outer polygon (holes fixed) so the region area (outer −
/// holes) hits `target` exactly, then assembles the region.
fn with_exact_area(
    outer: Polygon,
    holes: Vec<Polygon>,
    target: f64,
) -> Result<PolygonWithHoles, ScenarioError> {
    let hole_area: f64 = holes.iter().map(Polygon::area).sum();
    let outer = outer.scaled_to_area(target + hole_area);
    Ok(PolygonWithHoles::new(outer, holes)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_seven_build() {
        let params = ScenarioParams::default();
        let scenarios = all_scenarios(&params).unwrap();
        assert_eq!(scenarios.len(), 7);
        for s in &scenarios {
            assert!(s.m1.area() > 0.0);
            assert!(s.m2.area() > 0.0);
            assert_eq!(s.robots, 144);
            assert_eq!(s.range, 80.0);
        }
    }

    #[test]
    fn unknown_scenario_rejected() {
        assert!(matches!(
            build_scenario(0, &ScenarioParams::default()),
            Err(ScenarioError::UnknownScenario { id: 0 })
        ));
        assert!(matches!(
            build_scenario(8, &ScenarioParams::default()),
            Err(ScenarioError::UnknownScenario { id: 8 })
        ));
    }

    #[test]
    fn m2_areas_match_paper() {
        let params = ScenarioParams::default();
        let expect = [
            (1, 289_745.0),
            (2, 173_057.0),
            (3, 239_987.0),
            (4, 233_342.0),
            (5, 253_578.0),
        ];
        for (id, area) in expect {
            let s = build_scenario(id, &params).unwrap();
            let err = (s.m2.area() - area).abs() / area;
            assert!(err < 0.01, "scenario {id}: area {} vs {area}", s.m2.area());
        }
    }

    #[test]
    fn m1_area_matches_paper() {
        let m1 = m1_standard().unwrap();
        let err = (m1.area() - 308_261.0).abs() / 308_261.0;
        assert!(err < 0.01, "area {}", m1.area());
    }

    #[test]
    fn hole_structure_per_scenario() {
        let params = ScenarioParams::default();
        let holes: [(u8, usize, usize); 7] = [
            (1, 0, 0),
            (2, 0, 0),
            (3, 0, 1),
            (4, 0, 1),
            (5, 0, 3),
            (6, 1, 1),
            (7, 2, 2),
        ];
        for (id, m1_holes, m2_holes) in holes {
            let s = build_scenario(id, &params).unwrap();
            assert_eq!(s.m1.holes().len(), m1_holes, "scenario {id} M1");
            assert_eq!(s.m2.holes().len(), m2_holes, "scenario {id} M2");
        }
    }

    #[test]
    fn separation_is_respected() {
        for sep in [10.0, 50.0, 100.0] {
            let params = ScenarioParams {
                separation_ranges: sep,
                ..Default::default()
            };
            let s = build_scenario(1, &params).unwrap();
            let d = s.m1.centroid().distance(s.m2.centroid());
            assert!(
                (d - sep * 80.0).abs() < 1.0,
                "separation {d} vs {}",
                sep * 80.0
            );
        }
    }

    #[test]
    fn scenarios_are_deterministic() {
        let params = ScenarioParams::default();
        let a = build_scenario(3, &params).unwrap();
        let b = build_scenario(3, &params).unwrap();
        assert_eq!(a.m2.outer().vertices(), b.m2.outer().vertices());
    }

    #[test]
    fn scenario2_is_dissimilar_from_m1() {
        // The elongation makes the bounding-box aspect ratios differ.
        let s = build_scenario(2, &ScenarioParams::default()).unwrap();
        let a1 = s.m1.bbox().width() / s.m1.bbox().height();
        let a2 = s.m2.bbox().width() / s.m2.bbox().height();
        assert!(
            (a1 / a2 > 2.0) || (a2 / a1 > 2.0),
            "aspect ratios too similar: {a1} vs {a2}"
        );
    }
}
