//! Parametric FoI shape generators.
//!
//! Seeded Fourier-perturbed blobs stand in for the paper's hand-drawn
//! FoI boundaries, and a cosine "flower" generates the concave
//! flower-shaped pond of Fig. 2(d). Both are deterministic in their
//! seeds so every experiment is reproducible.

use crate::ScenarioError;
use anr_geom::{Point, Polygon};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::TAU;

/// Generates a smooth random blob of exactly `area` m², centered at
/// `center`, with `vertices` boundary vertices.
///
/// The radius is a base circle modulated by Fourier harmonics 2–6 with
/// seeded amplitudes up to ±18%, giving gently concave boundaries like
/// the paper's FoI models.
///
/// # Errors
///
/// Propagates polygon-construction errors (degenerate parameters).
///
/// # Panics
///
/// Panics when `vertices < 8` or `area <= 0`.
pub fn blob(
    center: Point,
    area: f64,
    seed: u64,
    vertices: usize,
) -> Result<Polygon, ScenarioError> {
    assert!(vertices >= 8, "a blob needs at least 8 vertices");
    assert!(area > 0.0, "area must be positive");
    let mut rng = StdRng::seed_from_u64(seed);

    // Harmonic amplitudes and phases.
    let harmonics: Vec<(f64, f64, f64)> = (2..=6)
        .map(|k| {
            let amp = rng.gen_range(0.02..0.18) / (k as f64 / 2.0);
            let phase = rng.gen_range(0.0..TAU);
            (k as f64, amp, phase)
        })
        .collect();

    let base_r = (area / std::f64::consts::PI).sqrt();
    let pts: Vec<Point> = (0..vertices)
        .map(|i| {
            let theta = TAU * i as f64 / vertices as f64;
            let mut r = 1.0;
            for &(k, amp, phase) in &harmonics {
                r += amp * (k * theta + phase).cos();
            }
            let r = base_r * r.max(0.3);
            Point::new(center.x + r * theta.cos(), center.y + r * theta.sin())
        })
        .collect();

    let poly = Polygon::new(pts)?;
    Ok(poly.scaled_to_area(area))
}

/// Generates a flower shape: `r(θ) = radius · (1 + depth·cos(petals·θ))`.
///
/// With `depth > 0` the shape is concave between petals — the paper's
/// "flower-shaped pond" (Fig. 2d) uses five petals.
///
/// # Errors
///
/// Propagates polygon-construction errors.
///
/// # Panics
///
/// Panics when `petals == 0`, `radius <= 0` or `depth` is not in
/// `[0, 0.95]`.
pub fn flower(
    center: Point,
    radius: f64,
    petals: usize,
    depth: f64,
    vertices: usize,
) -> Result<Polygon, ScenarioError> {
    assert!(petals > 0, "need at least one petal");
    assert!(radius > 0.0, "radius must be positive");
    assert!((0.0..=0.95).contains(&depth), "depth must be in [0, 0.95]");
    let vertices = vertices.max(3 * petals).max(12);
    let pts: Vec<Point> = (0..vertices)
        .map(|i| {
            let theta = TAU * i as f64 / vertices as f64;
            let r = radius * (1.0 + depth * (petals as f64 * theta).cos());
            Point::new(center.x + r * theta.cos(), center.y + r * theta.sin())
        })
        .collect();
    Ok(Polygon::new(pts)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blob_hits_requested_area() {
        for seed in [1, 42, 999] {
            let b = blob(Point::ORIGIN, 250_000.0, seed, 64).unwrap();
            assert!((b.area() - 250_000.0).abs() < 1.0);
        }
    }

    #[test]
    fn blob_is_seed_deterministic() {
        let a = blob(Point::ORIGIN, 100_000.0, 7, 48).unwrap();
        let b = blob(Point::ORIGIN, 100_000.0, 7, 48).unwrap();
        assert_eq!(a.vertices(), b.vertices());
        let c = blob(Point::ORIGIN, 100_000.0, 8, 48).unwrap();
        assert_ne!(a.vertices(), c.vertices());
    }

    #[test]
    fn blob_contains_its_center() {
        let b = blob(Point::new(100.0, -50.0), 50_000.0, 3, 64).unwrap();
        assert!(b.contains(Point::new(100.0, -50.0)));
    }

    #[test]
    fn flower_is_concave_between_petals() {
        let f = flower(Point::ORIGIN, 50.0, 5, 0.35, 40).unwrap();
        // A point at petal radius between two petals is outside.
        let theta = TAU / 10.0; // halfway between petal 0 and petal 1
        let tip = 50.0 * 1.35;
        let outside = Point::new(tip * theta.cos(), tip * theta.sin());
        assert!(!f.contains(outside));
        // The center is inside.
        assert!(f.contains(Point::ORIGIN));
    }

    #[test]
    fn flower_petal_count_shapes_boundary() {
        let f = flower(Point::ORIGIN, 40.0, 4, 0.3, 48).unwrap();
        // Max radius ≈ 52, min radius ≈ 28.
        let radii: Vec<f64> = f.vertices().iter().map(|p| p.to_vector().norm()).collect();
        let max = radii.iter().cloned().fold(0.0, f64::max);
        let min = radii.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((max - 52.0).abs() < 1.0, "max {max}");
        assert!((min - 28.0).abs() < 1.0, "min {min}");
    }

    #[test]
    #[should_panic]
    fn flower_rejects_extreme_depth() {
        let _ = flower(Point::ORIGIN, 10.0, 5, 0.99, 40);
    }
}
