//! Property tests: scenario construction invariants over the parameter
//! space actually swept by the benches.

use anr_coverage::deploy_exactly;
use anr_geom::Point;
use anr_netgraph::UnitDiskGraph;
use anr_scenarios::{blob, build_scenario, flower, ScenarioParams};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_scenario_builds_at_every_separation(id in 1u8..=7, sep in 10.0..100.0f64) {
        let s = build_scenario(id, &ScenarioParams {
            separation_ranges: sep,
            ..Default::default()
        }).unwrap();
        // The FoIs never overlap at the swept separations.
        prop_assert!(!s.m1.bbox().intersects(&s.m2.bbox()),
            "scenario {} overlaps at separation {}", id, sep);
        // Centroid distance matches the request.
        let d = s.m1.centroid().distance(s.m2.centroid());
        prop_assert!((d - sep * s.range).abs() < 1.0);
    }

    #[test]
    fn deployments_fit_and_connect(id in 1u8..=7) {
        let s = build_scenario(id, &ScenarioParams::default()).unwrap();
        let pts = deploy_exactly(&s.m1, s.robots).expect("144 robots fit M1");
        prop_assert_eq!(pts.len(), 144);
        let g = UnitDiskGraph::new(&pts, s.range);
        prop_assert!(g.is_connected(), "scenario {} deployment disconnected", id);
        for p in &pts {
            prop_assert!(s.m1.contains(*p));
            prop_assert!(!s.m1.in_hole(*p));
        }
    }

    #[test]
    fn blobs_are_valid_polygons(area in 50_000.0..400_000.0f64, seed in 0u64..500) {
        let b = blob(Point::ORIGIN, area, seed, 64).unwrap();
        prop_assert!((b.area() - area).abs() / area < 1e-6);
        prop_assert!(b.contains(b.centroid()));
        // No self-intersection among non-adjacent edges (radial
        // construction with r > 0 guarantees it; verify anyway).
        let edges: Vec<_> = b.edges().collect();
        for i in 0..edges.len() {
            for j in (i + 2)..edges.len() {
                if i == 0 && j == edges.len() - 1 {
                    continue; // adjacent around the loop
                }
                prop_assert!(!edges[i].crosses_interior(edges[j]),
                    "edges {} and {} cross", i, j);
            }
        }
    }

    #[test]
    fn flowers_have_requested_extremes(radius in 20.0..100.0f64, petals in 3usize..8,
                                       depth in 0.1..0.5f64) {
        let f = flower(Point::ORIGIN, radius, petals, depth, 8 * petals).unwrap();
        let radii: Vec<f64> = f.vertices().iter().map(|p| p.to_vector().norm()).collect();
        let max = radii.iter().cloned().fold(0.0, f64::max);
        let min = radii.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!((max - radius * (1.0 + depth)).abs() / radius < 0.05);
        prop_assert!((min - radius * (1.0 - depth)).abs() / radius < 0.05);
    }
}
