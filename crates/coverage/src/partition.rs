//! Sample-grid Voronoi partition of a field of interest.

use crate::Density;
use anr_geom::{NearestGrid, Point, PolygonWithHoles};

/// A dense sample grid over a FoI used to evaluate Voronoi regions,
/// centroids and coverage integrals on concave, multiply-connected
/// regions.
///
/// Build once per FoI and reuse across Lloyd iterations; each
/// [`GridPartition::assign`] is a nearest-site query per sample
/// accelerated by a bucket grid over the sites.
#[derive(Debug, Clone)]
pub struct GridPartition {
    region: PolygonWithHoles,
    samples: Vec<Point>,
    /// Area represented by each sample (spacing²).
    cell_area: f64,
}

impl GridPartition {
    /// Samples `region` on a square grid with the given spacing.
    ///
    /// # Panics
    ///
    /// Panics when `spacing <= 0` or when the region is so thin that no
    /// sample lands inside it.
    pub fn new(region: &PolygonWithHoles, spacing: f64) -> Self {
        assert!(spacing > 0.0, "spacing must be positive");
        let samples = region.grid_points(spacing);
        assert!(
            !samples.is_empty(),
            "no grid samples inside the region; decrease the spacing"
        );
        GridPartition {
            region: region.clone(),
            samples,
            cell_area: spacing * spacing,
        }
    }

    /// The sampled region.
    #[inline]
    pub fn region(&self) -> &PolygonWithHoles {
        &self.region
    }

    /// The sample points.
    #[inline]
    pub fn samples(&self) -> &[Point] {
        &self.samples
    }

    /// Area represented by one sample.
    #[inline]
    pub fn cell_area(&self) -> f64 {
        self.cell_area
    }

    /// Assigns every sample to its nearest site; returns per-site sample
    /// index lists (the discrete Voronoi regions).
    ///
    /// The nearest-site pass — the hot loop of every Lloyd iteration —
    /// buckets the sites into a uniform [`NearestGrid`] (rebuilt per
    /// call, `O(sites)`) and answers each sample with an expanding ring
    /// search, so the cost is `samples × O(1)` instead of `samples ×
    /// sites`. Sample chunks fan
    /// out over worker threads ([`anr_par`]); ties (lowest site index
    /// among equidistant sites) and output order are identical to the
    /// brute-force serial loop whatever the worker count — pinned by
    /// `assign_grid_matches_brute_force`.
    ///
    /// # Panics
    ///
    /// Panics when `sites` is empty.
    pub fn assign(&self, sites: &[Point]) -> Vec<Vec<usize>> {
        assert!(!sites.is_empty(), "need at least one site");
        let grid = NearestGrid::new(sites);
        let nearest = anr_par::par_chunks(&self.samples, 2048, 0, |chunk| {
            chunk
                .iter()
                .map(|&s| grid.nearest(sites, s))
                .collect::<Vec<usize>>()
        });
        let mut regions: Vec<Vec<usize>> = vec![Vec::new(); sites.len()];
        for (k, &i) in nearest.iter().flatten().enumerate() {
            regions[i].push(k);
        }
        regions
    }

    /// Reference nearest-site pass: the plain `samples × sites` loop the
    /// bucket-grid [`GridPartition::assign`] is pinned against.
    pub fn assign_brute_force(&self, sites: &[Point]) -> Vec<Vec<usize>> {
        assert!(!sites.is_empty(), "need at least one site");
        let nearest = anr_par::par_chunks(&self.samples, 2048, 0, |chunk| {
            chunk
                .iter()
                .map(|&s| {
                    let mut best = 0usize;
                    let mut best_d = f64::INFINITY;
                    for (i, &site) in sites.iter().enumerate() {
                        let d = site.distance_sq(s);
                        if d < best_d {
                            best_d = d;
                            best = i;
                        }
                    }
                    best
                })
                .collect::<Vec<usize>>()
        });
        let mut regions: Vec<Vec<usize>> = vec![Vec::new(); sites.len()];
        for (k, &i) in nearest.iter().flatten().enumerate() {
            regions[i].push(k);
        }
        regions
    }

    /// Density-weighted centroid of each site's Voronoi region.
    ///
    /// Sites whose region is empty keep their current position. Centroids
    /// that fall outside the region (possible for concave regions and
    /// holes) are snapped to the nearest region point, per Sec. III-D-3.
    pub fn centroids(&self, sites: &[Point], density: &Density) -> Vec<Point> {
        let regions = self.assign(sites);
        sites
            .iter()
            .enumerate()
            .map(|(i, &site)| {
                if regions[i].is_empty() {
                    return site;
                }
                let mut wx = 0.0;
                let mut wy = 0.0;
                let mut w = 0.0;
                for &k in &regions[i] {
                    let p = self.samples[k];
                    let rho = density.eval(&self.region, p);
                    wx += rho * p.x;
                    wy += rho * p.y;
                    w += rho;
                }
                let c = Point::new(wx / w, wy / w);
                self.region.clamp_inside(c)
            })
            .collect()
    }

    /// The sample point nearest to `p` — the "nearest grid point" rule
    /// for hole-avoidance fallbacks.
    ///
    /// Construction guarantees at least one sample; for an (impossible)
    /// empty sample set the query point itself is returned.
    pub fn nearest_sample(&self, p: Point) -> Point {
        self.samples
            .iter()
            .min_by(|a, b| a.distance_sq(p).total_cmp(&b.distance_sq(p)))
            .copied()
            .unwrap_or(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anr_geom::Polygon;

    fn square(side: f64) -> PolygonWithHoles {
        PolygonWithHoles::without_holes(Polygon::rectangle(Point::ORIGIN, side, side))
    }

    #[test]
    fn sample_count_tracks_area() {
        let part = GridPartition::new(&square(100.0), 5.0);
        let expect = (100.0f64 / 5.0).powi(2);
        assert!((part.samples().len() as f64 - expect).abs() / expect < 0.1);
        assert_eq!(part.cell_area(), 25.0);
    }

    #[test]
    fn assign_partitions_all_samples() {
        let part = GridPartition::new(&square(60.0), 4.0);
        let sites = vec![Point::new(15.0, 30.0), Point::new(45.0, 30.0)];
        let regions = part.assign(&sites);
        assert_eq!(regions.len(), 2);
        assert_eq!(regions[0].len() + regions[1].len(), part.samples().len());
        // Symmetric split.
        let diff = regions[0].len() as isize - regions[1].len() as isize;
        assert!(diff.abs() < 20, "unbalanced split: {diff}");
        // Every sample assigned to its nearer site.
        for &k in &regions[0] {
            let s = part.samples()[k];
            assert!(s.distance(sites[0]) <= s.distance(sites[1]) + 1e-9);
        }
    }

    #[test]
    fn uniform_centroid_of_single_site_is_region_center() {
        let part = GridPartition::new(&square(80.0), 2.0);
        let c = part.centroids(&[Point::new(7.0, 9.0)], &Density::Uniform);
        assert!(c[0].distance(Point::new(40.0, 40.0)) < 2.0);
    }

    #[test]
    fn density_pulls_centroid() {
        let part = GridPartition::new(&square(80.0), 2.0);
        let dens = Density::Radial {
            center: Point::new(70.0, 40.0),
            falloff: 15.0,
            gain: 20.0,
        };
        let c = part.centroids(&[Point::new(40.0, 40.0)], &dens);
        assert!(c[0].x > 45.0, "centroid {} not pulled toward density", c[0]);
    }

    #[test]
    fn centroid_snapped_out_of_hole() {
        let outer = Polygon::rectangle(Point::ORIGIN, 100.0, 100.0);
        let hole = Polygon::rectangle(Point::new(35.0, 35.0), 30.0, 30.0);
        let region = PolygonWithHoles::new(outer, vec![hole]).unwrap();
        let part = GridPartition::new(&region, 2.5);
        // One site centered: its region is the whole FoI, whose centroid
        // is the hole center — must be snapped to the hole boundary.
        let c = part.centroids(&[Point::new(50.0, 48.0)], &Density::Uniform);
        assert!(region.contains(c[0]));
        assert!(!region.in_hole(c[0]));
    }

    #[test]
    fn empty_region_site_keeps_position() {
        let part = GridPartition::new(&square(50.0), 2.0);
        // Second site is far outside; all samples go to the first.
        let sites = vec![Point::new(25.0, 25.0), Point::new(4000.0, 4000.0)];
        let c = part.centroids(&sites, &Density::Uniform);
        assert_eq!(c[1], sites[1]);
    }

    #[test]
    fn nearest_sample_is_in_region() {
        let outer = Polygon::rectangle(Point::ORIGIN, 100.0, 100.0);
        let hole = Polygon::rectangle(Point::new(40.0, 40.0), 20.0, 20.0);
        let region = PolygonWithHoles::new(outer, vec![hole]).unwrap();
        let part = GridPartition::new(&region, 3.0);
        let s = part.nearest_sample(Point::new(50.0, 50.0)); // hole center
        assert!(region.contains(s));
        assert!(!region.in_hole(s));
    }

    #[test]
    fn assign_grid_matches_brute_force() {
        // Deterministic pseudo-random sites (LCG), including exact
        // duplicates (index ties) and far-outlier sites.
        let part = GridPartition::new(&square(100.0), 1.5);
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut sites: Vec<Point> = (0..200)
            .map(|_| Point::new(next() * 140.0 - 20.0, next() * 140.0 - 20.0))
            .collect();
        sites.push(sites[17]); // exact duplicate: tie must pick index 17
        sites.push(Point::new(5000.0, -5000.0)); // far outlier
        assert_eq!(part.assign(&sites), part.assign_brute_force(&sites));

        // Sample exactly equidistant between two sites.
        let part = GridPartition::new(&square(10.0), 1.0);
        let sites = vec![Point::new(2.0, 5.0), Point::new(8.0, 5.0)];
        assert_eq!(part.assign(&sites), part.assign_brute_force(&sites));

        // Degenerate: all sites coincident.
        let sites = vec![Point::new(5.0, 5.0); 4];
        assert_eq!(part.assign(&sites), part.assign_brute_force(&sites));
    }

    #[test]
    #[should_panic]
    fn assign_empty_sites_panics() {
        let part = GridPartition::new(&square(10.0), 1.0);
        let _ = part.assign(&[]);
    }
}
