//! # anr-coverage — centroidal-Voronoi coverage control
//!
//! After the harmonic-map transition drops the robots into the target
//! FoI, the paper runs "a minor local adjustment to optimal coverage
//! positions" (Sec. III-C): Lloyd's algorithm on the Voronoi partition of
//! the FoI, with an optional density function so "more robots will be
//! deployed near the center of a fire" (Sec. IV-E), and a
//! connectivity-guarded step rule so no robot disconnects while moving to
//! its centroid (Sec. III-D-1).
//!
//! Because the FoIs are concave and multiply connected, the Voronoi
//! partition is computed against a dense sample grid of the region
//! ([`GridPartition`]) — the same discretization the paper uses for the
//! FoI's "surface data". Centroids falling inside holes are snapped to
//! the nearest region point, as prescribed in Sec. III-D-3.
//!
//! ## Example
//!
//! ```
//! use anr_geom::{Point, Polygon, PolygonWithHoles};
//! use anr_coverage::{triangular_lattice, GridPartition, LloydConfig, run_lloyd, Density};
//!
//! let foi = PolygonWithHoles::without_holes(
//!     Polygon::rectangle(Point::ORIGIN, 200.0, 200.0),
//! );
//! let partition = GridPartition::new(&foi, 5.0);
//! let sites = triangular_lattice(&foi, 50.0);
//! let result = run_lloyd(&sites, &partition, &Density::Uniform, &LloydConfig::default());
//! assert!(result.iterations >= 1);
//! assert!(result.sites.iter().all(|p| foi.contains(*p)));
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

mod analytic;
mod density;
mod lattice;
mod lloyd;
mod local;
mod metrics;
mod partition;

pub use analytic::{voronoi_cell, voronoi_cells};
pub use density::Density;
pub use lattice::{deploy_exactly, triangular_lattice};
pub use lloyd::{run_lloyd, run_lloyd_guarded, run_lloyd_guarded_traced, LloydConfig, LloydResult};
pub use local::local_centroids;
pub use metrics::{covered_fraction, min_pairwise_distance};
pub use partition::GridPartition;
