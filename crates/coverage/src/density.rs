//! Density functions for weighted centroidal Voronoi diagrams.

use anr_geom::{Point, PolygonWithHoles};

/// A density field over a field of interest.
///
/// The centroid of a Voronoi region is computed with respect to this
/// density (Sec. III-C); non-uniform densities let the swarm concentrate
/// robots where the task demands (Sec. IV-E).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
#[derive(Default)]
pub enum Density {
    /// Constant density: plain centroidal Voronoi.
    #[default]
    Uniform,
    /// Higher density near hole boundaries: `1 + exp(−d/falloff) · gain`
    /// where `d` is the distance to the nearest hole. The paper's fire
    /// example — "the closer to the hole, the more mobile robots are
    /// needed" (Fig. 6).
    HoleProximity {
        /// Distance scale of the exponential falloff, in metres.
        falloff: f64,
        /// Peak density multiplier at the hole boundary.
        gain: f64,
    },
    /// Higher density near a point of interest, same falloff law.
    Radial {
        /// The point of interest.
        center: Point,
        /// Distance scale of the exponential falloff, in metres.
        falloff: f64,
        /// Peak density multiplier at the center.
        gain: f64,
    },
}

impl Density {
    /// Evaluates the density at `p` within `region`.
    ///
    /// Always strictly positive.
    pub fn eval(&self, region: &PolygonWithHoles, p: Point) -> f64 {
        match *self {
            Density::Uniform => 1.0,
            Density::HoleProximity { falloff, gain } => {
                let d = region.distance_to_holes(p);
                if d.is_finite() {
                    1.0 + gain * (-d / falloff).exp()
                } else {
                    1.0
                }
            }
            Density::Radial {
                center,
                falloff,
                gain,
            } => 1.0 + gain * (-p.distance(center) / falloff).exp(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anr_geom::Polygon;

    fn region_with_hole() -> PolygonWithHoles {
        let outer = Polygon::rectangle(Point::ORIGIN, 100.0, 100.0);
        let hole = Polygon::rectangle(Point::new(40.0, 40.0), 20.0, 20.0);
        PolygonWithHoles::new(outer, vec![hole]).unwrap()
    }

    #[test]
    fn uniform_is_one_everywhere() {
        let r = region_with_hole();
        assert_eq!(Density::Uniform.eval(&r, Point::new(1.0, 1.0)), 1.0);
        assert_eq!(Density::Uniform.eval(&r, Point::new(99.0, 99.0)), 1.0);
    }

    #[test]
    fn hole_proximity_decays_with_distance() {
        let r = region_with_hole();
        let d = Density::HoleProximity {
            falloff: 20.0,
            gain: 5.0,
        };
        let near = d.eval(&r, Point::new(38.0, 50.0)); // 2 m from hole
        let far = d.eval(&r, Point::new(5.0, 5.0));
        assert!(near > far);
        assert!(far > 1.0); // still positive baseline
    }

    #[test]
    fn hole_proximity_without_holes_is_uniform() {
        let r = PolygonWithHoles::without_holes(Polygon::rectangle(Point::ORIGIN, 10.0, 10.0));
        let d = Density::HoleProximity {
            falloff: 5.0,
            gain: 9.0,
        };
        assert_eq!(d.eval(&r, Point::new(5.0, 5.0)), 1.0);
    }

    #[test]
    fn radial_peaks_at_center() {
        let r = region_with_hole();
        let c = Point::new(10.0, 10.0);
        let d = Density::Radial {
            center: c,
            falloff: 10.0,
            gain: 3.0,
        };
        assert!((d.eval(&r, c) - 4.0).abs() < 1e-12);
        assert!(d.eval(&r, Point::new(90.0, 90.0)) < 1.1);
    }

    #[test]
    fn density_always_positive() {
        let r = region_with_hole();
        for dens in [
            Density::Uniform,
            Density::HoleProximity {
                falloff: 1.0,
                gain: 100.0,
            },
            Density::Radial {
                center: Point::ORIGIN,
                falloff: 0.5,
                gain: 50.0,
            },
        ] {
            for p in [Point::new(0.0, 0.0), Point::new(99.0, 3.0)] {
                assert!(dens.eval(&r, p) > 0.0);
            }
        }
    }
}
