//! Coverage metrics.

use crate::GridPartition;
use anr_geom::Point;

/// Fraction of the region covered by disks of radius `r_s` around the
/// sites, evaluated on the partition's sample grid.
///
/// # Panics
///
/// Panics when `sites` is empty or `sensing_range <= 0`.
pub fn covered_fraction(partition: &GridPartition, sites: &[Point], sensing_range: f64) -> f64 {
    assert!(!sites.is_empty(), "need at least one site");
    assert!(sensing_range > 0.0, "sensing range must be positive");
    let r2 = sensing_range * sensing_range;
    let covered = partition
        .samples()
        .iter()
        .filter(|&&s| sites.iter().any(|&p| p.distance_sq(s) <= r2))
        .count();
    covered as f64 / partition.samples().len() as f64
}

/// Smallest pairwise distance among sites; `None` for fewer than two.
pub fn min_pairwise_distance(sites: &[Point]) -> Option<f64> {
    if sites.len() < 2 {
        return None;
    }
    let mut best = f64::INFINITY;
    for i in 0..sites.len() {
        for j in (i + 1)..sites.len() {
            best = best.min(sites[i].distance(sites[j]));
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triangular_lattice;
    use anr_geom::{Polygon, PolygonWithHoles};

    fn square(side: f64) -> PolygonWithHoles {
        PolygonWithHoles::without_holes(Polygon::rectangle(Point::ORIGIN, side, side))
    }

    #[test]
    fn full_coverage_with_big_radius() {
        let region = square(100.0);
        let part = GridPartition::new(&region, 5.0);
        let f = covered_fraction(&part, &[Point::new(50.0, 50.0)], 100.0);
        assert_eq!(f, 1.0);
    }

    #[test]
    fn partial_coverage_with_small_radius() {
        let region = square(100.0);
        let part = GridPartition::new(&region, 2.0);
        let f = covered_fraction(&part, &[Point::new(50.0, 50.0)], 25.0);
        // Disk area / region area = π·625 / 10000 ≈ 0.196.
        assert!((f - 0.196).abs() < 0.03, "fraction {f}");
    }

    #[test]
    fn lattice_at_sqrt3_ratio_covers_fully() {
        // r_c = √3·r_s with lattice spacing = r_c gives full coverage
        // (the paper's assumption r_c ≥ √3 r_s, Sec. II-A).
        let region = square(300.0);
        let part = GridPartition::new(&region, 4.0);
        let spacing = 60.0;
        let r_s = spacing / 3f64.sqrt() + 0.5;
        let sites = triangular_lattice(&region, spacing);
        // The optimality theorem is an interior statement: the clipped
        // lattice leaves a fringe strip near the region boundary, so
        // check samples more than one spacing away from it.
        let r2 = r_s * r_s;
        let interior: Vec<_> = part
            .samples()
            .iter()
            .filter(|s| {
                s.x > spacing && s.x < 300.0 - spacing && s.y > spacing && s.y < 300.0 - spacing
            })
            .collect();
        let covered = interior
            .iter()
            .filter(|&&&s| sites.iter().any(|&p| p.distance_sq(s) <= r2))
            .count();
        let f = covered as f64 / interior.len() as f64;
        assert!(f > 0.995, "interior coverage {f}");
        // Whole-region coverage is still high.
        assert!(covered_fraction(&part, &sites, r_s) > 0.9);
    }

    #[test]
    fn min_pairwise_distance_cases() {
        assert_eq!(min_pairwise_distance(&[]), None);
        assert_eq!(min_pairwise_distance(&[Point::ORIGIN]), None);
        let d = min_pairwise_distance(&[
            Point::new(0.0, 0.0),
            Point::new(3.0, 4.0),
            Point::new(10.0, 0.0),
        ])
        .unwrap();
        assert_eq!(d, 5.0);
    }
}
