//! Analytic (polygon-clipped) Voronoi cells for hole-free FoIs.
//!
//! The sample-grid partition ([`crate::GridPartition`]) is the workhorse
//! for concave, multiply-connected FoIs; for hole-free regions the exact
//! Voronoi cell of a site is the FoI polygon successively clipped by the
//! perpendicular-bisector half-planes against every other site. Exact
//! cells give exact (uniform-density) centroids, used to validate the
//! grid partition's accuracy in tests and available to callers who need
//! polygon cells (e.g. rendering).

use anr_geom::{Point, Polygon};

/// The exact Voronoi cell of `sites[index]` within the convex-or-concave
/// boundary `region`, as a clipped polygon.
///
/// Returns `None` when the cell is empty (possible when the site lies
/// outside `region`). For concave regions the result is the clip of the
/// region by the bisector half-planes, which equals the true geodesic
/// Voronoi cell only when the cell is a single piece — exact for convex
/// regions, a standard approximation otherwise.
///
/// # Panics
///
/// Panics when `index` is out of range.
pub fn voronoi_cell(region: &Polygon, sites: &[Point], index: usize) -> Option<Polygon> {
    assert!(index < sites.len(), "site index out of range");
    let me = sites[index];
    let mut cell = region.to_ccw();
    for (j, &other) in sites.iter().enumerate() {
        if j == index || other.distance_sq(me) == 0.0 {
            continue;
        }
        // Perpendicular bisector of (me, other): keep the side of `me`.
        // The half-plane kept by clip_half_plane is the left of a → b;
        // choose the directed bisector line so `me` is on its left.
        let mid = me.midpoint(other);
        let dir = (other - me).perp(); // along the bisector
        let a = mid;
        let b = mid + dir;
        // orient2d(a, b, me) = cross(dir, me − mid); me − mid = (me−other)/2,
        // and cross(perp(v), −v/2) = ... sign-check at runtime instead:
        let keeps_me = anr_geom::orient2d(a, b, me) >= 0.0;
        let (a, b) = if keeps_me { (a, b) } else { (b, a) };
        cell = cell.clip_half_plane(a, b)?;
    }
    Some(cell)
}

/// All Voronoi cells of `sites` within `region`; entries are `None` for
/// empty cells.
pub fn voronoi_cells(region: &Polygon, sites: &[Point]) -> Vec<Option<Polygon>> {
    (0..sites.len())
        .map(|i| voronoi_cell(region, sites, i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{triangular_lattice, GridPartition};
    use anr_geom::PolygonWithHoles;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn two_sites_split_the_square() {
        let region = Polygon::rectangle(Point::ORIGIN, 10.0, 10.0);
        let sites = vec![p(2.5, 5.0), p(7.5, 5.0)];
        let left = voronoi_cell(&region, &sites, 0).unwrap();
        let right = voronoi_cell(&region, &sites, 1).unwrap();
        assert!((left.area() - 50.0).abs() < 1e-9);
        assert!((right.area() - 50.0).abs() < 1e-9);
        assert!(left.contains(p(1.0, 5.0)));
        assert!(!left.contains(p(9.0, 5.0)));
        assert!(right.contains(p(9.0, 5.0)));
    }

    #[test]
    fn cells_partition_the_region() {
        let region = Polygon::rectangle(Point::ORIGIN, 100.0, 80.0);
        let foi = PolygonWithHoles::without_holes(region.clone());
        let sites = triangular_lattice(&foi, 25.0);
        let cells = voronoi_cells(&region, &sites);
        let total: f64 = cells.iter().flatten().map(Polygon::area).sum();
        assert!(
            (total - region.area()).abs() / region.area() < 1e-6,
            "cells cover {total} of {}",
            region.area()
        );
        // Each site is inside its own cell.
        for (i, cell) in cells.iter().enumerate() {
            let cell = cell.as_ref().expect("non-empty cell");
            assert!(cell.contains(sites[i]), "site {i} outside its cell");
        }
    }

    #[test]
    fn cell_points_are_nearest_to_their_site() {
        let region = Polygon::rectangle(Point::ORIGIN, 60.0, 60.0);
        let sites = vec![p(10.0, 10.0), p(50.0, 15.0), p(30.0, 50.0), p(25.0, 30.0)];
        for (i, cell) in voronoi_cells(&region, &sites).into_iter().enumerate() {
            let cell = cell.expect("non-empty");
            let c = cell.centroid();
            let my_d = c.distance(sites[i]);
            for (j, &s) in sites.iter().enumerate() {
                if j != i {
                    assert!(
                        my_d <= c.distance(s) + 1e-9,
                        "cell {i} centroid closer to site {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn analytic_centroids_match_grid_partition() {
        // The grid partition's density-weighted centroids approximate
        // the exact polygon centroids at its sampling resolution.
        let region = Polygon::rectangle(Point::ORIGIN, 120.0, 90.0);
        let foi = PolygonWithHoles::without_holes(region.clone());
        let sites = vec![p(25.0, 30.0), p(80.0, 20.0), p(60.0, 70.0), p(100.0, 60.0)];
        let grid = GridPartition::new(&foi, 1.5);
        let approx = grid.centroids(&sites, &crate::Density::Uniform);
        for (i, cell) in voronoi_cells(&region, &sites).into_iter().enumerate() {
            let exact = cell.expect("non-empty").centroid();
            let err = exact.distance(approx[i]);
            assert!(
                err < 1.5,
                "site {i}: exact {exact} vs grid {approx:?} (err {err})"
            );
        }
    }

    #[test]
    fn single_site_owns_everything() {
        let region = Polygon::rectangle(Point::ORIGIN, 10.0, 10.0);
        let cell = voronoi_cell(&region, &[p(3.0, 3.0)], 0).unwrap();
        assert!((cell.area() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn far_outside_site_gets_no_cell() {
        let region = Polygon::rectangle(Point::ORIGIN, 10.0, 10.0);
        // Site 1 is far outside; every region point is closer to site 0.
        let sites = vec![p(5.0, 5.0), p(500.0, 500.0)];
        assert!(voronoi_cell(&region, &sites, 1).is_none());
        let c0 = voronoi_cell(&region, &sites, 0).unwrap();
        assert!((c0.area() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn coincident_sites_do_not_panic() {
        let region = Polygon::rectangle(Point::ORIGIN, 10.0, 10.0);
        let sites = vec![p(5.0, 5.0), p(5.0, 5.0)];
        // Degenerate duplicate sites: both claim the full region.
        let c = voronoi_cell(&region, &sites, 0).unwrap();
        assert!((c.area() - 100.0).abs() < 1e-9);
    }
}
