//! Lloyd's algorithm for centroidal Voronoi coverage (Sec. III-C),
//! with the connectivity-guarded step rule of Sec. III-D-1.

use crate::{Density, GridPartition};
use anr_geom::{Point, Segment};
use anr_netgraph::UnitDiskGraph;
use anr_trace::{TraceValue, Tracer};

/// Configuration for the Lloyd iteration.
#[derive(Debug, Clone, Copy)]
pub struct LloydConfig {
    /// Stop when no site moves farther than this (metres). Default 0.5.
    pub tolerance: f64,
    /// Iteration budget. Default 100.
    pub max_iterations: usize,
    /// Record the full site vector after every iteration in
    /// [`LloydResult::history`] (default `false`). Recording clones all
    /// sites each iteration — pure overhead for callers that only want
    /// the final positions, so opt in only when a timeline is needed
    /// (e.g. transition metrics or per-step connectivity audits).
    pub record_history: bool,
}

impl Default for LloydConfig {
    fn default() -> Self {
        LloydConfig {
            tolerance: 0.5,
            max_iterations: 100,
            record_history: false,
        }
    }
}

/// Result of a Lloyd run.
#[derive(Debug, Clone)]
pub struct LloydResult {
    /// Final site positions.
    pub sites: Vec<Point>,
    /// Iterations executed.
    pub iterations: usize,
    /// Total distance moved by all sites across the whole run — the
    /// "adjustment cost" that the paper folds into its moving-distance
    /// comparison (Sec. IV-A).
    pub total_movement: f64,
    /// Whether the run converged within the budget.
    pub converged: bool,
    /// Site positions after every iteration (excluding the initial
    /// positions) — the sampled timeline used by transition metrics.
    /// Empty unless [`LloydConfig::record_history`] is set.
    pub history: Vec<Vec<Point>>,
}

/// Runs plain Lloyd iteration: each site repeatedly moves to the
/// density-weighted centroid of its Voronoi region.
///
/// Site motion is clamped to the region: a straight move that would cut
/// through a hole follows the shorter path in spirit by stopping at the
/// clamped centroid (hole-aware centroids come from
/// [`GridPartition::centroids`]).
///
/// # Panics
///
/// Panics when `sites` is empty.
pub fn run_lloyd(
    sites: &[Point],
    partition: &GridPartition,
    density: &Density,
    config: &LloydConfig,
) -> LloydResult {
    assert!(!sites.is_empty(), "need at least one site");
    let mut cur = sites.to_vec();
    let mut total_movement = 0.0;
    let mut iterations = 0;
    let mut converged = false;
    let mut history = Vec::new();
    while iterations < config.max_iterations {
        iterations += 1;
        let targets = partition.centroids(&cur, density);
        let mut max_move = 0.0f64;
        for (s, t) in cur.iter_mut().zip(&targets) {
            let d = s.distance(*t);
            total_movement += d;
            max_move = max_move.max(d);
            *s = *t;
        }
        if config.record_history {
            history.push(cur.clone());
        }
        if max_move < config.tolerance {
            converged = true;
            break;
        }
    }
    LloydResult {
        sites: cur,
        iterations,
        total_movement,
        converged,
        history,
    }
}

/// Runs Lloyd iteration with the paper's global-connectivity guard: at
/// each step, if moving every robot to its centroid would disconnect the
/// network, the step is halved (and halved again, down to `2⁻⁶` of the
/// full step) until the network stays connected (Sec. III-D-1: "each
/// robot checks whether it is safe to move to half of the distance to
/// the centroid position and so on").
///
/// # Panics
///
/// Panics when `sites` is empty or `range <= 0`.
pub fn run_lloyd_guarded(
    sites: &[Point],
    partition: &GridPartition,
    density: &Density,
    config: &LloydConfig,
    range: f64,
) -> LloydResult {
    run_lloyd_guarded_traced(
        sites,
        partition,
        density,
        config,
        range,
        &Tracer::disabled(),
    )
}

/// [`run_lloyd_guarded`] with per-iteration observability: every
/// iteration emits a `lloyd_iter` event on `tracer` carrying the
/// iteration number, the accepted step fraction (1.0 for an unguarded
/// full step, 0.0 when even the smallest step would disconnect), and the
/// largest single-site move. Tracing is observation only — results are
/// bit-identical to [`run_lloyd_guarded`].
///
/// # Panics
///
/// Panics when `sites` is empty or `range <= 0`.
pub fn run_lloyd_guarded_traced(
    sites: &[Point],
    partition: &GridPartition,
    density: &Density,
    config: &LloydConfig,
    range: f64,
    tracer: &Tracer,
) -> LloydResult {
    assert!(!sites.is_empty(), "need at least one site");
    assert!(range > 0.0, "communication range must be positive");
    let mut cur = sites.to_vec();
    let mut total_movement = 0.0;
    let mut iterations = 0;
    let mut converged = false;
    let mut history = Vec::new();
    // One candidate buffer for the whole run, mutated in place for each
    // halved fraction instead of re-collected.
    let mut candidate = cur.clone();

    while iterations < config.max_iterations {
        iterations += 1;
        let targets = partition.centroids(&cur, density);

        // Find the largest fraction of the step that keeps the network
        // connected. Full step first, then halve.
        let mut fraction = 1.0f64;
        let mut accepted = false;
        for _ in 0..7 {
            let mut moved = false;
            for ((c, s), t) in candidate.iter_mut().zip(&cur).zip(&targets) {
                let p = s.lerp(*t, fraction);
                // Do not step across a hole: if the straight segment
                // is blocked, keep this robot in place this round.
                let clamped = if partition.region().segment_blocked(Segment::new(*s, p)) {
                    *s
                } else {
                    partition.region().clamp_inside(p)
                };
                moved |= clamped != *s;
                *c = clamped;
            }
            // Nobody moves at this fraction: the topology is exactly the
            // current one, so there is nothing to re-check.
            if !moved || UnitDiskGraph::new(&candidate, range).is_connected() {
                accepted = true;
                break;
            }
            fraction /= 2.0;
        }

        if !accepted {
            // Even tiny steps disconnect: freeze this iteration.
            candidate.copy_from_slice(&cur);
        }

        let mut max_move = 0.0f64;
        for (s, n) in cur.iter().zip(&candidate) {
            let d = s.distance(*n);
            total_movement += d;
            max_move = max_move.max(d);
        }
        if tracer.is_enabled() {
            tracer.event(
                "lloyd_iter",
                &[
                    ("iter", TraceValue::U64(iterations as u64)),
                    (
                        "fraction",
                        TraceValue::F64(if accepted { fraction } else { 0.0 }),
                    ),
                    ("max_move", TraceValue::F64(max_move)),
                ],
            );
        }
        std::mem::swap(&mut cur, &mut candidate);
        if config.record_history {
            history.push(cur.clone());
        }
        if max_move < config.tolerance {
            converged = true;
            break;
        }
    }

    LloydResult {
        sites: cur,
        iterations,
        total_movement,
        converged,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triangular_lattice;
    use anr_geom::{Polygon, PolygonWithHoles};

    fn square(side: f64) -> PolygonWithHoles {
        PolygonWithHoles::without_holes(Polygon::rectangle(Point::ORIGIN, side, side))
    }

    #[test]
    fn single_site_converges_to_center() {
        let region = square(100.0);
        let part = GridPartition::new(&region, 2.5);
        let r = run_lloyd(
            &[Point::new(5.0, 95.0)],
            &part,
            &Density::Uniform,
            &LloydConfig::default(),
        );
        assert!(r.converged);
        assert!(r.sites[0].distance(Point::new(50.0, 50.0)) < 2.0);
    }

    #[test]
    fn lloyd_reduces_spread_irregularity() {
        // Clumped initial sites spread out: min pairwise distance grows.
        let region = square(100.0);
        let part = GridPartition::new(&region, 2.5);
        let sites: Vec<Point> = (0..9)
            .map(|i| Point::new(10.0 + (i % 3) as f64 * 3.0, 10.0 + (i / 3) as f64 * 3.0))
            .collect();
        let before = crate::min_pairwise_distance(&sites).unwrap();
        let r = run_lloyd(&sites, &part, &Density::Uniform, &LloydConfig::default());
        let after = crate::min_pairwise_distance(&r.sites).unwrap();
        assert!(after > 3.0 * before, "spread {before} -> {after}");
        assert!(r.total_movement > 0.0);
    }

    #[test]
    fn converged_lattice_barely_moves() {
        // A deployment already near-CVT needs only minor adjustment —
        // the paper's premise for the post-transition step.
        let region = square(200.0);
        let part = GridPartition::new(&region, 5.0);
        let sites = triangular_lattice(&region, 40.0);
        let r = run_lloyd(&sites, &part, &Density::Uniform, &LloydConfig::default());
        let per_site = r.total_movement / sites.len() as f64;
        assert!(per_site < 20.0, "per-site adjustment {per_site}");
    }

    #[test]
    fn density_concentrates_sites() {
        let outer = Polygon::rectangle(Point::ORIGIN, 200.0, 200.0);
        let hole = Polygon::regular(Point::new(100.0, 100.0), 25.0, 12);
        let region = PolygonWithHoles::new(outer, vec![hole]).unwrap();
        let part = GridPartition::new(&region, 5.0);
        let sites = triangular_lattice(&region, 40.0);
        let n = sites.len() as f64;

        let uniform = run_lloyd(&sites, &part, &Density::Uniform, &LloydConfig::default());
        let dense = run_lloyd(
            &sites,
            &part,
            &Density::HoleProximity {
                falloff: 30.0,
                gain: 8.0,
            },
            &LloydConfig::default(),
        );
        let mean_hole_dist = |pts: &[Point]| -> f64 {
            pts.iter()
                .map(|&p| region.distance_to_holes(p))
                .sum::<f64>()
                / n
        };
        assert!(
            mean_hole_dist(&dense.sites) < mean_hole_dist(&uniform.sites),
            "density did not pull sites toward the hole"
        );
    }

    #[test]
    fn sites_stay_inside_region() {
        let outer = Polygon::rectangle(Point::ORIGIN, 120.0, 120.0);
        let hole = Polygon::rectangle(Point::new(45.0, 45.0), 30.0, 30.0);
        let region = PolygonWithHoles::new(outer, vec![hole]).unwrap();
        let part = GridPartition::new(&region, 4.0);
        let sites = triangular_lattice(&region, 30.0);
        let r = run_lloyd(&sites, &part, &Density::Uniform, &LloydConfig::default());
        for p in &r.sites {
            assert!(region.contains(*p));
            assert!(!region.in_hole(*p));
        }
    }

    #[test]
    fn history_is_opt_in() {
        let region = square(100.0);
        let part = GridPartition::new(&region, 2.5);
        let sites = vec![Point::new(5.0, 95.0), Point::new(90.0, 10.0)];
        let quiet = run_lloyd(&sites, &part, &Density::Uniform, &LloydConfig::default());
        assert!(quiet.history.is_empty(), "history off by default");
        let recorded = run_lloyd(
            &sites,
            &part,
            &Density::Uniform,
            &LloydConfig {
                record_history: true,
                ..Default::default()
            },
        );
        assert_eq!(recorded.history.len(), recorded.iterations);
        // Recording is observation only: the run itself is unchanged.
        assert_eq!(quiet.sites, recorded.sites);
        assert_eq!(quiet.iterations, recorded.iterations);
        assert_eq!(quiet.total_movement, recorded.total_movement);
        assert_eq!(recorded.history.last(), Some(&recorded.sites));
    }

    #[test]
    fn guarded_history_is_opt_in_and_identical() {
        let region = square(400.0);
        let part = GridPartition::new(&region, 10.0);
        let sites: Vec<Point> = (0..9)
            .map(|i| Point::new(180.0 + (i % 3) as f64 * 12.0, 180.0 + (i / 3) as f64 * 12.0))
            .collect();
        let cfg = LloydConfig {
            max_iterations: 8,
            ..Default::default()
        };
        let quiet = run_lloyd_guarded(&sites, &part, &Density::Uniform, &cfg, 80.0);
        assert!(quiet.history.is_empty());
        let recorded = run_lloyd_guarded(
            &sites,
            &part,
            &Density::Uniform,
            &LloydConfig {
                record_history: true,
                ..cfg
            },
            80.0,
        );
        assert_eq!(recorded.history.len(), recorded.iterations);
        assert_eq!(quiet.sites, recorded.sites);
        assert_eq!(quiet.total_movement, recorded.total_movement);
    }

    #[test]
    fn traced_guarded_lloyd_is_observation_only() {
        let region = square(400.0);
        let part = GridPartition::new(&region, 10.0);
        let sites: Vec<Point> = (0..9)
            .map(|i| Point::new(180.0 + (i % 3) as f64 * 12.0, 180.0 + (i / 3) as f64 * 12.0))
            .collect();
        let cfg = LloydConfig {
            max_iterations: 8,
            ..Default::default()
        };
        let plain = run_lloyd_guarded(&sites, &part, &Density::Uniform, &cfg, 80.0);
        let tracer = Tracer::ring(4096);
        let traced =
            run_lloyd_guarded_traced(&sites, &part, &Density::Uniform, &cfg, 80.0, &tracer);
        assert_eq!(plain.sites, traced.sites);
        assert_eq!(plain.iterations, traced.iterations);
        assert_eq!(plain.total_movement, traced.total_movement);
        let iters = tracer
            .events()
            .iter()
            .filter(|e| e.name == "lloyd_iter")
            .count();
        assert_eq!(iters, traced.iterations, "one lloyd_iter per iteration");
    }

    #[test]
    fn guarded_lloyd_preserves_connectivity_every_step() {
        // Start from a tight cluster whose Lloyd targets would stretch
        // the network; the guard must keep it connected throughout.
        let region = square(400.0);
        let part = GridPartition::new(&region, 10.0);
        let range = 80.0;
        let sites: Vec<Point> = (0..16)
            .map(|i| Point::new(180.0 + (i % 4) as f64 * 12.0, 180.0 + (i / 4) as f64 * 12.0))
            .collect();
        let cfg = LloydConfig {
            max_iterations: 40,
            ..Default::default()
        };
        // Re-run step by step and assert connectivity after each
        // iteration by using max_iterations = k.
        for k in 1..=8 {
            let r = run_lloyd_guarded(
                &sites,
                &part,
                &Density::Uniform,
                &LloydConfig {
                    max_iterations: k,
                    ..cfg
                },
                range,
            );
            assert!(
                UnitDiskGraph::new(&r.sites, range).is_connected(),
                "disconnected after {k} iterations"
            );
        }
    }

    #[test]
    fn guarded_moves_less_or_equal_when_binding() {
        let region = square(600.0);
        let part = GridPartition::new(&region, 12.0);
        let sites: Vec<Point> = (0..9)
            .map(|i| Point::new(280.0 + (i % 3) as f64 * 15.0, 280.0 + (i / 3) as f64 * 15.0))
            .collect();
        let cfg = LloydConfig {
            max_iterations: 30,
            ..Default::default()
        };
        let free = run_lloyd(&sites, &part, &Density::Uniform, &cfg);
        let guarded = run_lloyd_guarded(&sites, &part, &Density::Uniform, &cfg, 80.0);
        // The free run disconnects the 80 m network; the guarded run must
        // not, at the price of staying more compact.
        assert!(!UnitDiskGraph::new(&free.sites, 80.0).is_connected());
        assert!(UnitDiskGraph::new(&guarded.sites, 80.0).is_connected());
    }
}
