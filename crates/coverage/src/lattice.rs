//! Triangular-lattice deployments.
//!
//! The paper's optimal coverage layout is the triangular lattice — "a
//! network of equilateral triangles ... proved optimal in terms of
//! minimum number of sensors required for complete coverage" (Sec. II-A,
//! refs. [6], [7], [11]). These generators seed the initial deployments
//! and the Lloyd refinement.

use anr_geom::{Point, PolygonWithHoles};

/// Generates a triangular lattice of the given spacing clipped to
/// `region` (holes excluded).
///
/// Rows are `spacing·√3/2` apart with odd rows offset by half a spacing,
/// so nearest neighbors are exactly `spacing` apart.
///
/// # Panics
///
/// Panics when `spacing <= 0`.
///
/// # Example
///
/// ```
/// use anr_geom::{Point, Polygon, PolygonWithHoles};
/// use anr_coverage::triangular_lattice;
///
/// let foi = PolygonWithHoles::without_holes(
///     Polygon::rectangle(Point::ORIGIN, 100.0, 100.0),
/// );
/// let pts = triangular_lattice(&foi, 20.0);
/// assert!(!pts.is_empty());
/// assert!(pts.iter().all(|p| foi.contains(*p)));
/// ```
pub fn triangular_lattice(region: &PolygonWithHoles, spacing: f64) -> Vec<Point> {
    assert!(spacing > 0.0, "spacing must be positive");
    let bb = region.bbox();
    let row_height = spacing * 3f64.sqrt() / 2.0;
    let mut pts = Vec::new();
    let mut row = 0usize;
    let mut y = bb.min.y + row_height / 2.0;
    while y < bb.max.y {
        let offset = if row % 2 == 1 { spacing / 2.0 } else { 0.0 };
        let mut x = bb.min.x + spacing / 2.0 + offset;
        while x < bb.max.x {
            let p = Point::new(x, y);
            if region.contains(p) && !region.in_hole(p) {
                pts.push(p);
            }
            x += spacing;
        }
        y += row_height;
        row += 1;
    }
    pts
}

/// Deploys **exactly** `n` robots in `region` on a (near-)triangular
/// lattice.
///
/// The spacing is found by bisection so the clipped lattice holds at
/// least `n` points; surplus points are dropped farthest-from-centroid
/// first, which trims the lattice fringe rather than its interior.
///
/// Returns `None` when `n == 0` or no spacing in a sane range fits `n`
/// points (region far too small).
pub fn deploy_exactly(region: &PolygonWithHoles, n: usize) -> Option<Vec<Point>> {
    if n == 0 {
        return None;
    }
    // Ideal spacing from the lattice density: each point covers
    // spacing² · √3/2 of area.
    let ideal = (region.area() / (n as f64) * 2.0 / 3f64.sqrt()).sqrt();

    // Bisect on spacing: smaller spacing → more points.
    let mut lo = ideal * 0.5;
    let mut hi = ideal * 2.0;
    // Ensure hi is small enough (count >= n at lo) and expand if needed.
    for _ in 0..20 {
        if triangular_lattice(region, lo).len() >= n {
            break;
        }
        lo *= 0.7;
    }
    if triangular_lattice(region, lo).len() < n {
        return None;
    }
    for _ in 0..40 {
        let mid = 0.5 * (lo + hi);
        if triangular_lattice(region, mid).len() >= n {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let mut pts = triangular_lattice(region, lo);
    debug_assert!(pts.len() >= n);

    // Trim the fringe: drop the points farthest from the centroid.
    let c = region.centroid();
    pts.sort_by(|a, b| a.distance_sq(c).total_cmp(&b.distance_sq(c)));
    pts.truncate(n);
    Some(pts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anr_geom::Polygon;

    fn square(side: f64) -> PolygonWithHoles {
        PolygonWithHoles::without_holes(Polygon::rectangle(Point::ORIGIN, side, side))
    }

    #[test]
    fn lattice_neighbors_at_spacing() {
        let pts = triangular_lattice(&square(100.0), 10.0);
        assert!(pts.len() > 50);
        // Each interior point's nearest neighbor is at exactly the
        // spacing (within fp noise).
        let mut checked = 0;
        for &p in &pts {
            if p.x > 20.0 && p.x < 80.0 && p.y > 20.0 && p.y < 80.0 {
                let nearest = pts
                    .iter()
                    .filter(|&&q| q != p)
                    .map(|&q| q.distance(p))
                    .fold(f64::INFINITY, f64::min);
                assert!((nearest - 10.0).abs() < 1e-9, "nearest {nearest}");
                checked += 1;
            }
        }
        assert!(checked > 10);
    }

    #[test]
    fn lattice_avoids_holes() {
        let outer = Polygon::rectangle(Point::ORIGIN, 100.0, 100.0);
        let hole = Polygon::rectangle(Point::new(30.0, 30.0), 40.0, 40.0);
        let region = PolygonWithHoles::new(outer, vec![hole]).unwrap();
        let pts = triangular_lattice(&region, 8.0);
        for p in pts {
            assert!(!region.in_hole(p));
        }
    }

    #[test]
    fn deploy_exactly_gives_exact_count() {
        for n in [10, 50, 144] {
            let pts = deploy_exactly(&square(555.0), n).unwrap();
            assert_eq!(pts.len(), n);
        }
    }

    #[test]
    fn deploy_exactly_zero_is_none() {
        assert!(deploy_exactly(&square(10.0), 0).is_none());
    }

    #[test]
    fn deployment_density_matches_area() {
        // 144 robots in the paper's M1-sized region (~308,261 m²): the
        // implied lattice spacing should be ~√(2A/(√3·n)) ≈ 49.7 m.
        let side = 308_261f64.sqrt();
        let pts = deploy_exactly(&square(side), 144).unwrap();
        assert_eq!(pts.len(), 144);
        // Min pairwise distance close to the ideal spacing.
        let mut min_d = f64::INFINITY;
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                min_d = min_d.min(pts[i].distance(pts[j]));
            }
        }
        let ideal = (308_261.0 / 144.0 * 2.0 / 3f64.sqrt()).sqrt();
        assert!(
            min_d > 0.75 * ideal && min_d < 1.25 * ideal,
            "min distance {min_d} vs ideal {ideal}"
        );
    }

    #[test]
    fn deployment_is_deterministic() {
        let a = deploy_exactly(&square(300.0), 40).unwrap();
        let b = deploy_exactly(&square(300.0), 40).unwrap();
        assert_eq!(a, b);
    }
}
