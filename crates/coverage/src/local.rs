//! Locally computed centroids (paper Sec. III-C).
//!
//! "At each step, a mobile robot collects the position information of
//! its **two-range neighbors**, computing its corresponding Voronoi
//! region and the centroid of the Voronoi region." A robot's Voronoi
//! cell is determined entirely by sites within twice the maximum cell
//! radius, so for coverage-dense deployments the two-hop neighborhood
//! suffices and the local computation equals the global one — verified
//! in tests against [`GridPartition::centroids`].

use crate::{Density, GridPartition};
use anr_geom::Point;

/// Computes every site's Voronoi centroid using only the sites within
/// `neighborhood` of it (the paper's two-range collection rule:
/// `neighborhood = 2·r_c`) and only the region samples within
/// `neighborhood` of it.
///
/// Sites whose (locally computed) region is empty keep their position.
/// Centroids are snapped into the region like the global variant.
///
/// For deployments whose Voronoi cells have radius well under
/// `neighborhood / 2` this equals [`GridPartition::centroids`] exactly;
/// for sparse deployments the local view may truncate a cell (the same
/// truncation a real robot would suffer).
///
/// # Panics
///
/// Panics when `sites` is empty or `neighborhood <= 0`.
pub fn local_centroids(
    partition: &GridPartition,
    sites: &[Point],
    density: &Density,
    neighborhood: f64,
) -> Vec<Point> {
    assert!(!sites.is_empty(), "need at least one site");
    assert!(neighborhood > 0.0, "neighborhood must be positive");
    let r2 = neighborhood * neighborhood;

    sites
        .iter()
        .enumerate()
        .map(|(i, &me)| {
            // The robots this one can learn about (paper: two-range).
            let visible: Vec<Point> = sites
                .iter()
                .enumerate()
                .filter(|&(j, &s)| j != i && s.distance_sq(me) <= r2)
                .map(|(_, &s)| s)
                .collect();

            let mut wx = 0.0;
            let mut wy = 0.0;
            let mut w = 0.0;
            for &sample in partition.samples() {
                if sample.distance_sq(me) > r2 {
                    continue; // beyond the robot's sensing of the field
                }
                let mine = sample.distance_sq(me);
                if visible.iter().any(|&v| v.distance_sq(sample) < mine) {
                    continue; // a visible neighbor owns this sample
                }
                let rho = density.eval(partition.region(), sample);
                wx += rho * sample.x;
                wy += rho * sample.y;
                w += rho;
            }
            if w == 0.0 {
                me
            } else {
                partition.region().clamp_inside(Point::new(wx / w, wy / w))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triangular_lattice;
    use anr_geom::{Polygon, PolygonWithHoles};

    fn square(side: f64) -> PolygonWithHoles {
        PolygonWithHoles::without_holes(Polygon::rectangle(Point::ORIGIN, side, side))
    }

    #[test]
    fn local_equals_global_for_dense_lattice() {
        // Lattice pitch 40 m, two-range neighborhood 160 m: every cell is
        // fully determined by the local view.
        let region = square(300.0);
        let part = GridPartition::new(&region, 4.0);
        let sites = triangular_lattice(&region, 40.0);
        let global = part.centroids(&sites, &Density::Uniform);
        let local = local_centroids(&part, &sites, &Density::Uniform, 160.0);
        for (i, (g, l)) in global.iter().zip(&local).enumerate() {
            assert!(g.distance(*l) < 1e-9, "site {i}: global {g} vs local {l}");
        }
    }

    #[test]
    fn local_equals_global_with_density() {
        let region = square(240.0);
        let part = GridPartition::new(&region, 4.0);
        let sites = triangular_lattice(&region, 40.0);
        let dens = Density::Radial {
            center: Point::new(120.0, 120.0),
            falloff: 60.0,
            gain: 5.0,
        };
        let global = part.centroids(&sites, &dens);
        let local = local_centroids(&part, &sites, &dens, 160.0);
        for (g, l) in global.iter().zip(&local) {
            assert!(g.distance(*l) < 1e-9);
        }
    }

    #[test]
    fn tiny_neighborhood_truncates_cells() {
        // A lone far site with a myopic neighborhood only sees samples
        // near itself — its centroid stays near it rather than moving to
        // the region center.
        let region = square(200.0);
        let part = GridPartition::new(&region, 4.0);
        let sites = vec![Point::new(20.0, 20.0)];
        let global = part.centroids(&sites, &Density::Uniform);
        let local = local_centroids(&part, &sites, &Density::Uniform, 30.0);
        // Global pulls hard toward (100, 100); local barely moves.
        assert!(global[0].distance(Point::new(100.0, 100.0)) < 5.0);
        assert!(local[0].distance(sites[0]) < 20.0);
    }

    #[test]
    fn empty_local_region_keeps_position() {
        // A site outside the region with a neighborhood too small to
        // reach any sample keeps its position.
        let region = square(100.0);
        let part = GridPartition::new(&region, 5.0);
        let sites = vec![Point::new(50.0, 50.0), Point::new(-500.0, -500.0)];
        let local = local_centroids(&part, &sites, &Density::Uniform, 50.0);
        assert_eq!(local[1], sites[1]);
    }
}
