//! Property tests: lattices, partitions and Lloyd invariants.

use anr_coverage::{
    deploy_exactly, min_pairwise_distance, run_lloyd, triangular_lattice, voronoi_cells, Density,
    GridPartition, LloydConfig,
};
use anr_geom::{Point, Polygon, PolygonWithHoles};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn lattice_spacing_is_respected(w in 100.0..400.0f64, h in 100.0..400.0f64,
                                    s in 20.0..60.0f64) {
        let foi = PolygonWithHoles::without_holes(Polygon::rectangle(Point::ORIGIN, w, h));
        let pts = triangular_lattice(&foi, s);
        prop_assume!(pts.len() >= 2);
        let min_d = min_pairwise_distance(&pts).expect("two points");
        prop_assert!(min_d > s - 1e-9, "min distance {} under spacing {}", min_d, s);
        for p in &pts {
            prop_assert!(foi.contains(*p));
        }
    }

    #[test]
    fn deploy_exactly_hits_count(side in 200.0..500.0f64, n in 10usize..80) {
        let foi = PolygonWithHoles::without_holes(Polygon::rectangle(Point::ORIGIN, side, side));
        if let Some(pts) = deploy_exactly(&foi, n) {
            prop_assert_eq!(pts.len(), n);
            for p in &pts {
                prop_assert!(foi.contains(*p));
            }
        }
    }

    #[test]
    fn partition_assignment_is_total_and_nearest(
        side in 80.0..200.0f64,
        sites in prop::collection::vec((10.0..70.0f64, 10.0..70.0f64), 1..8),
    ) {
        let foi = PolygonWithHoles::without_holes(Polygon::rectangle(Point::ORIGIN, side, side));
        let part = GridPartition::new(&foi, 5.0);
        let sites: Vec<Point> = sites.into_iter().map(|(x, y)| Point::new(x, y)).collect();
        let regions = part.assign(&sites);
        let total: usize = regions.iter().map(Vec::len).sum();
        prop_assert_eq!(total, part.samples().len());
        for (i, region) in regions.iter().enumerate() {
            for &k in region {
                let s = part.samples()[k];
                for (j, &other) in sites.iter().enumerate() {
                    if j != i {
                        prop_assert!(s.distance(sites[i]) <= s.distance(other) + 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn lloyd_total_movement_is_finite_and_positive(
        side in 150.0..300.0f64,
        n in 4usize..16,
    ) {
        let foi = PolygonWithHoles::without_holes(Polygon::rectangle(Point::ORIGIN, side, side));
        let part = GridPartition::new(&foi, side / 40.0);
        // Clumped start: all sites in a corner.
        let sites: Vec<Point> = (0..n)
            .map(|k| Point::new(10.0 + (k % 4) as f64 * 4.0, 10.0 + (k / 4) as f64 * 4.0))
            .collect();
        let r = run_lloyd(
            &sites,
            &part,
            &Density::Uniform,
            &LloydConfig {
                record_history: true,
                ..Default::default()
            },
        );
        prop_assert!(r.total_movement.is_finite());
        prop_assert!(r.total_movement > 0.0);
        prop_assert_eq!(r.history.len(), r.iterations);
        // Lloyd spreads the clump.
        let before = min_pairwise_distance(&sites).unwrap_or(0.0);
        let after = min_pairwise_distance(&r.sites).unwrap_or(0.0);
        prop_assert!(after >= before);
    }

    #[test]
    fn analytic_cells_tile_rectangles(
        sites in prop::collection::vec((5.0..95.0f64, 5.0..95.0f64), 2..10),
    ) {
        let region = Polygon::rectangle(Point::ORIGIN, 100.0, 100.0);
        let sites: Vec<Point> = sites.into_iter().map(|(x, y)| Point::new(x, y)).collect();
        // Skip near-coincident sites (degenerate bisectors).
        for i in 0..sites.len() {
            for j in (i + 1)..sites.len() {
                prop_assume!(sites[i].distance(sites[j]) > 1.0);
            }
        }
        let cells = voronoi_cells(&region, &sites);
        let total: f64 = cells.iter().flatten().map(Polygon::area).sum();
        prop_assert!((total - region.area()).abs() / region.area() < 1e-6,
            "cells tile {} of {}", total, region.area());
    }
}
