//! Property tests: Hungarian optimality and structure.

use anr_assign::{euclidean_costs, greedy_assignment, hungarian, CostMatrix};
use anr_geom::Point;
use proptest::prelude::*;

/// Exhaustive optimum over all permutations (test oracle, n ≤ 6).
fn brute_force(costs: &CostMatrix) -> f64 {
    fn go(costs: &CostMatrix, row: usize, used: &mut Vec<bool>, acc: f64, best: &mut f64) {
        if row == costs.len() {
            *best = best.min(acc);
            return;
        }
        if acc >= *best {
            return;
        }
        for col in 0..costs.len() {
            if !used[col] {
                used[col] = true;
                go(costs, row + 1, used, acc + costs.get(row, col), best);
                used[col] = false;
            }
        }
    }
    let mut best = f64::INFINITY;
    go(costs, 0, &mut vec![false; costs.len()], 0.0, &mut best);
    best
}

fn arb_matrix(max_n: usize) -> impl Strategy<Value = CostMatrix> {
    (2..=max_n).prop_flat_map(|n| {
        prop::collection::vec(0.0..100.0f64, n * n)
            .prop_map(move |data| CostMatrix::new(n, data).expect("valid"))
    })
}

proptest! {
    #[test]
    fn hungarian_matches_brute_force(costs in arb_matrix(6)) {
        let m = hungarian(&costs);
        let opt = brute_force(&costs);
        prop_assert!((m.total_cost - opt).abs() < 1e-9,
            "hungarian {} vs optimum {}", m.total_cost, opt);
    }

    #[test]
    fn hungarian_result_is_permutation(costs in arb_matrix(12)) {
        let m = hungarian(&costs);
        let mut seen = vec![false; costs.len()];
        for i in 0..costs.len() {
            let t = m.target_of(i);
            prop_assert!(!seen[t], "target {} assigned twice", t);
            seen[t] = true;
        }
    }

    #[test]
    fn hungarian_never_worse_than_greedy(costs in arb_matrix(12)) {
        prop_assert!(hungarian(&costs).total_cost <= greedy_assignment(&costs).total_cost + 1e-9);
    }

    #[test]
    fn row_shift_invariance(costs in arb_matrix(6), shift in 0.0..50.0f64) {
        // Adding a constant to one row changes the total by exactly that
        // constant and preserves the optimal assignment structure.
        let n = costs.len();
        let mut data = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                data.push(costs.get(i, j) + if i == 0 { shift } else { 0.0 });
            }
        }
        let shifted = CostMatrix::new(n, data).expect("valid");
        let base = hungarian(&costs).total_cost;
        let after = hungarian(&shifted).total_cost;
        prop_assert!((after - base - shift).abs() < 1e-9);
    }

    #[test]
    fn euclidean_assignment_beats_identity(
        pts in prop::collection::vec((0.0..500.0f64, 0.0..500.0f64), 3..12)
    ) {
        // The optimal matching never exceeds the identity pairing cost.
        let src: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let dst: Vec<Point> = pts.iter().rev().map(|&(x, y)| Point::new(x + 50.0, y)).collect();
        let costs = euclidean_costs(&src, &dst).expect("balanced");
        let m = hungarian(&costs);
        let identity: f64 = (0..src.len()).map(|i| costs.get(i, i)).sum();
        prop_assert!(m.total_cost <= identity + 1e-9);
    }
}
