//! # anr-assign — minimum-cost bipartite matching (Hungarian method)
//!
//! The paper's minimum-moving-distance baseline (Sec. IV) assigns robots
//! to target coverage positions with the Hungarian method
//! (Kuhn–Munkres), which it credits to refs. \[23\]–\[25\]. This crate
//! implements the O(n³) shortest-augmenting-path formulation with dual
//! potentials, plus helpers for Euclidean cost matrices and a greedy
//! baseline used to sanity-check optimality in tests.
//!
//! ## Example
//!
//! ```
//! use anr_geom::Point;
//! use anr_assign::{euclidean_costs, hungarian};
//!
//! let robots = vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)];
//! let targets = vec![Point::new(10.0, 1.0), Point::new(0.0, 1.0)];
//! let costs = euclidean_costs(&robots, &targets)?;
//! let m = hungarian(&costs);
//! // The identity pairing would cost ~20; crossing costs ~2.
//! assert_eq!(m.target_of(0), 1);
//! assert_eq!(m.target_of(1), 0);
//! assert!(m.total_cost < 2.1);
//! # Ok::<(), anr_assign::AssignError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

use anr_geom::Point;
use std::error::Error;
use std::fmt;

/// Errors raised while building cost matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AssignError {
    /// The two point sets have different sizes (matching must be perfect
    /// on a balanced bipartite graph, paper Def. 4–5).
    SizeMismatch {
        /// Number of sources.
        sources: usize,
        /// Number of targets.
        targets: usize,
    },
    /// The problem is empty.
    Empty,
    /// A cost was NaN or infinite.
    NonFiniteCost {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
    },
}

impl fmt::Display for AssignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssignError::SizeMismatch { sources, targets } => {
                write!(
                    f,
                    "balanced matching needs equal sizes, got {sources} vs {targets}"
                )
            }
            AssignError::Empty => write!(f, "assignment problem has no participants"),
            AssignError::NonFiniteCost { row, col } => {
                write!(f, "cost at ({row}, {col}) is not finite")
            }
        }
    }
}

impl Error for AssignError {}

/// A dense square cost matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CostMatrix {
    n: usize,
    data: Vec<f64>,
}

impl CostMatrix {
    /// Creates an `n × n` matrix from row-major data.
    ///
    /// # Errors
    ///
    /// * [`AssignError::Empty`] when `n == 0`.
    /// * [`AssignError::NonFiniteCost`] for NaN/∞ entries.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != n * n`.
    pub fn new(n: usize, data: Vec<f64>) -> Result<Self, AssignError> {
        assert_eq!(data.len(), n * n, "row-major data must be n*n long");
        if n == 0 {
            return Err(AssignError::Empty);
        }
        for (k, &c) in data.iter().enumerate() {
            if !c.is_finite() {
                return Err(AssignError::NonFiniteCost {
                    row: k / n,
                    col: k % n,
                });
            }
        }
        Ok(CostMatrix { n, data })
    }

    /// Matrix dimension.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false (construction rejects empty matrices).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Cost of assigning source `row` to target `col`.
    ///
    /// # Panics
    ///
    /// Panics when indices are out of range.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.n && col < self.n, "index out of range");
        self.data[row * self.n + col]
    }
}

/// Builds the Euclidean-distance cost matrix between two equal-sized
/// point sets (paper Sec. II-A: "the cost associated with each edge is
/// the Euclidean distance between the two incident vertices").
///
/// # Errors
///
/// [`AssignError::SizeMismatch`] or [`AssignError::Empty`].
pub fn euclidean_costs(sources: &[Point], targets: &[Point]) -> Result<CostMatrix, AssignError> {
    if sources.len() != targets.len() {
        return Err(AssignError::SizeMismatch {
            sources: sources.len(),
            targets: targets.len(),
        });
    }
    let n = sources.len();
    if n == 0 {
        return Err(AssignError::Empty);
    }
    let mut data = Vec::with_capacity(n * n);
    for s in sources {
        for t in targets {
            data.push(s.distance(*t));
        }
    }
    CostMatrix::new(n, data)
}

/// A perfect matching between `n` sources and `n` targets.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// `target_of[i]` = target assigned to source `i`.
    target_of: Vec<usize>,
    /// Sum of matched costs.
    pub total_cost: f64,
}

impl Assignment {
    /// Target assigned to source `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[inline]
    pub fn target_of(&self, i: usize) -> usize {
        self.target_of[i]
    }

    /// The full source→target map.
    #[inline]
    pub fn targets(&self) -> &[usize] {
        &self.target_of
    }

    /// Number of matched pairs.
    #[inline]
    pub fn len(&self) -> usize {
        self.target_of.len()
    }

    /// Always false for a constructed assignment.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.target_of.is_empty()
    }
}

/// Solves the minimum-cost perfect matching with the Hungarian method
/// (shortest augmenting paths with dual potentials, O(n³)).
///
/// This is the paper's "Hungarian method" comparator, which "should
/// achieve the minimum total moving distance among all possible methods"
/// (Sec. IV).
///
/// # Example
///
/// See the [crate-level documentation](crate).
pub fn hungarian(costs: &CostMatrix) -> Assignment {
    let n = costs.len();
    // 1-based arrays; index 0 is the virtual "unmatched" row/column.
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[j] = row matched to column j
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=n {
                if !used[j] {
                    let cur = costs.get(i0 - 1, j - 1) - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the found path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut target_of = vec![0usize; n];
    for j in 1..=n {
        if p[j] > 0 {
            target_of[p[j] - 1] = j - 1;
        }
    }
    let total_cost = (0..n).map(|i| costs.get(i, target_of[i])).sum();
    Assignment {
        target_of,
        total_cost,
    }
}

/// Greedy matching baseline: repeatedly matches the globally cheapest
/// unmatched (source, target) pair. Not optimal; used to sanity-check
/// the Hungarian solution (`hungarian ≤ greedy` always).
pub fn greedy_assignment(costs: &CostMatrix) -> Assignment {
    let n = costs.len();
    let mut pairs: Vec<(f64, usize, usize)> = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            pairs.push((costs.get(i, j), i, j));
        }
    }
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut target_of = vec![usize::MAX; n];
    let mut taken = vec![false; n];
    let mut matched = 0;
    for (_, i, j) in pairs {
        if target_of[i] == usize::MAX && !taken[j] {
            target_of[i] = j;
            taken[j] = true;
            matched += 1;
            if matched == n {
                break;
            }
        }
    }
    let total_cost = (0..n).map(|i| costs.get(i, target_of[i])).sum();
    Assignment {
        target_of,
        total_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(n: usize, rows: &[&[f64]]) -> CostMatrix {
        let data: Vec<f64> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        CostMatrix::new(n, data).unwrap()
    }

    /// Exhaustive minimum over all permutations (n ≤ 8).
    fn brute_force(costs: &CostMatrix) -> f64 {
        fn perms(n: usize) -> Vec<Vec<usize>> {
            if n == 1 {
                return vec![vec![0]];
            }
            let mut out = Vec::new();
            for p in perms(n - 1) {
                for k in 0..n {
                    let mut q: Vec<usize> =
                        p.iter().map(|&x| if x >= k { x + 1 } else { x }).collect();
                    q.push(k);
                    out.push(q);
                }
            }
            out
        }
        perms(costs.len())
            .into_iter()
            .map(|p| (0..costs.len()).map(|i| costs.get(i, p[i])).sum())
            .fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn solves_trivial_identity() {
        let c = mat(2, &[&[0.0, 10.0], &[10.0, 0.0]]);
        let m = hungarian(&c);
        assert_eq!(m.target_of(0), 0);
        assert_eq!(m.target_of(1), 1);
        assert_eq!(m.total_cost, 0.0);
    }

    #[test]
    fn solves_crossing_case() {
        let c = mat(2, &[&[10.0, 1.0], &[1.0, 10.0]]);
        let m = hungarian(&c);
        assert_eq!(m.target_of(0), 1);
        assert_eq!(m.target_of(1), 0);
        assert_eq!(m.total_cost, 2.0);
    }

    #[test]
    fn classic_3x3() {
        // A standard textbook instance with optimum 5 = 1 + 2 + 2.
        let c = mat(3, &[&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0], &[3.0, 6.0, 9.0]]);
        let m = hungarian(&c);
        assert_eq!(m.total_cost, brute_force(&c));
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        let mut seed: u64 = 5;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (1u64 << 31) as f64
        };
        for n in 2..=6 {
            for _ in 0..10 {
                let data: Vec<f64> = (0..n * n).map(|_| (next() * 100.0).round()).collect();
                let c = CostMatrix::new(n, data).unwrap();
                let m = hungarian(&c);
                let bf = brute_force(&c);
                assert!(
                    (m.total_cost - bf).abs() < 1e-9,
                    "n={n}: hungarian {} vs brute force {bf}",
                    m.total_cost
                );
                // Must be a permutation.
                let mut seen = vec![false; n];
                for i in 0..n {
                    assert!(!seen[m.target_of(i)]);
                    seen[m.target_of(i)] = true;
                }
            }
        }
    }

    #[test]
    fn hungarian_never_beats_greedy_in_reverse() {
        let mut seed: u64 = 77;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (1u64 << 31) as f64
        };
        for _ in 0..20 {
            let n = 10;
            let data: Vec<f64> = (0..n * n).map(|_| next() * 100.0).collect();
            let c = CostMatrix::new(n, data).unwrap();
            assert!(hungarian(&c).total_cost <= greedy_assignment(&c).total_cost + 1e-9);
        }
    }

    #[test]
    fn euclidean_costs_square() {
        let s = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let t = vec![Point::new(0.0, 1.0), Point::new(1.0, 1.0)];
        let c = euclidean_costs(&s, &t).unwrap();
        assert_eq!(c.get(0, 0), 1.0);
        assert!((c.get(0, 1) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn euclidean_rejects_mismatch() {
        let s = vec![Point::new(0.0, 0.0)];
        assert!(matches!(
            euclidean_costs(&s, &[]),
            Err(AssignError::SizeMismatch {
                sources: 1,
                targets: 0
            })
        ));
    }

    #[test]
    fn rejects_nonfinite_costs() {
        assert!(matches!(
            CostMatrix::new(2, vec![0.0, 1.0, f64::NAN, 2.0]),
            Err(AssignError::NonFiniteCost { row: 1, col: 0 })
        ));
    }

    #[test]
    fn rejects_empty() {
        assert!(matches!(
            CostMatrix::new(0, vec![]),
            Err(AssignError::Empty)
        ));
    }

    #[test]
    fn single_element() {
        let c = mat(1, &[&[7.5]]);
        let m = hungarian(&c);
        assert_eq!(m.target_of(0), 0);
        assert_eq!(m.total_cost, 7.5);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn large_instance_runs() {
        // 144 robots — the paper's deployment size.
        let n = 144;
        let mut seed: u64 = 9;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as f64 / (1u64 << 31) as f64
        };
        let src: Vec<Point> = (0..n)
            .map(|_| Point::new(next() * 500.0, next() * 500.0))
            .collect();
        let dst: Vec<Point> = (0..n)
            .map(|_| Point::new(next() * 500.0, next() * 500.0))
            .collect();
        let c = euclidean_costs(&src, &dst).unwrap();
        let m = hungarian(&c);
        assert!(m.total_cost > 0.0);
        assert!(m.total_cost <= greedy_assignment(&c).total_cost + 1e-9);
    }
}
