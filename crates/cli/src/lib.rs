//! # anr-cli — command-line interface for the optimal-marching library
//!
//! A small hand-rolled CLI (no argument-parsing dependencies) exposing
//! the reproduction's main entry points:
//!
//! ```text
//! anr scenario --id 3 --method a          # run one scenario, print metrics
//! anr sweep --id 1 --quick                # Fig.3-style CSV sweep
//! anr render --id 3 --out figures/        # SVG deployments before/after
//! anr mission --stops 3                   # a sequential multi-FoI tour
//! anr fault-sweep --loss 0,0.1,0.3        # protocol survival grid (JSON)
//! ```
//!
//! The argument parser and command runners live in this library crate so
//! they are unit-testable; `src/main.rs` is a thin wrapper.

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]
#![warn(missing_docs)]

mod args;
mod commands;

pub use args::{parse_args, parse_invocation, ArgError, Command, EngineArg, Invocation, MethodArg};
pub use commands::{run_command, run_command_traced, CliError};
