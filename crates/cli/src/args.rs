//! Argument parsing for the `anr` binary.

use std::error::Error;
use std::fmt;
use std::path::PathBuf;

/// Which method to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodArg {
    /// Our method (a): maximize the stable link ratio.
    OursA,
    /// Our method (b): minimize the moving distance.
    OursB,
    /// Direct-translation baseline.
    Direct,
    /// Hungarian baseline.
    Hungarian,
    /// All four, in the paper's order.
    All,
}

/// Which simulation engine runs the fault-sweep cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineArg {
    /// The round-stepping synchronous harness.
    #[default]
    Sync,
    /// The discrete-event engine (`anr-eventsim`).
    Event,
}

impl MethodArg {
    fn parse(s: &str) -> Result<Self, ArgError> {
        match s {
            "a" | "ours_a" => Ok(MethodArg::OursA),
            "b" | "ours_b" => Ok(MethodArg::OursB),
            "direct" | "direct_translation" => Ok(MethodArg::Direct),
            "hungarian" | "hung" => Ok(MethodArg::Hungarian),
            "all" => Ok(MethodArg::All),
            other => Err(ArgError::BadValue {
                flag: "--method",
                value: other.to_string(),
                expected: "a | b | direct | hungarian | all",
            }),
        }
    }
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `anr scenario --id N [--method M] [--separation S] [--robots R]`
    Scenario {
        /// Scenario id (1–7).
        id: u8,
        /// Method selection.
        method: MethodArg,
        /// FoI separation in communication ranges.
        separation: f64,
        /// Robot count.
        robots: usize,
    },
    /// `anr sweep --id N [--quick] [--charts DIR]`
    Sweep {
        /// Scenario id (1–7).
        id: u8,
        /// Use the short separation sweep.
        quick: bool,
        /// Optional chart output directory.
        charts: Option<PathBuf>,
    },
    /// `anr render --id N [--out DIR] [--separation S]`
    Render {
        /// Scenario id (1–7).
        id: u8,
        /// Output directory for the SVGs.
        out: PathBuf,
        /// FoI separation in communication ranges.
        separation: f64,
    },
    /// `anr mission [--stops K] [--robots R]`
    Mission {
        /// Number of FoIs on the tour (≥ 2).
        stops: usize,
        /// Robot count.
        robots: usize,
    },
    /// `anr fault-sweep [--id N] [--robots R] [--loss CSV] [--crashes CSV]
    /// [--seed S] [--workers W] [--engine sync|event] [--out FILE]`
    FaultSweep {
        /// Scenario id (1–7) whose deployment supplies the topology.
        id: u8,
        /// Robot count.
        robots: usize,
        /// Loss probabilities to sweep.
        loss: Vec<f64>,
        /// Crash counts to sweep.
        crashes: Vec<usize>,
        /// Master seed.
        seed: u64,
        /// Worker threads for the grid (0 = auto).
        workers: usize,
        /// Simulation engine for the cell runs (results are
        /// byte-identical; the event engine scales further).
        engine: EngineArg,
        /// Write the JSON grid here instead of stdout.
        out: Option<PathBuf>,
    },
    /// `anr bench [--smoke] [--repeats N] [--tier10k] [--against FILE]
    /// [--distsim] [--large] [--ckpt FILE] [--out FILE]`
    Bench {
        /// Tiny problem sizes and one repeat — a CI smoke run.
        smoke: bool,
        /// Timed repetitions per stage (the median is reported).
        repeats: usize,
        /// Run the distributed-simulation scaling tier
        /// (`anr-eventsim`) instead of the pipeline trajectory.
        distsim: bool,
        /// Distsim tier only: include the 10⁶-robot series.
        large: bool,
        /// Distsim tier only: also write the 10⁴-robot checkpoint
        /// artifact here.
        ckpt: Option<PathBuf>,
        /// Pipeline tier only: also run the 10⁴-robot scale tier
        /// (scenario 1, one end-to-end march).
        tier10k: bool,
        /// Pipeline tier only: committed baseline report to guard
        /// against — exit non-zero when any pipeline stage median
        /// regresses beyond 2× the baseline (plus a 10 ms grace).
        against: Option<PathBuf>,
        /// Where to write the JSON trajectory (default
        /// `BENCH_pipeline.json`, or `BENCH_distsim.json` with
        /// `--distsim`).
        out: PathBuf,
    },
    /// `anr audit [--id N] [--method a|b] [--separation S] [--robots R]`
    Audit {
        /// Scenario id (1–7); `None` audits every bundled scenario.
        id: Option<u8>,
        /// Method whose transition is audited (`all` is rejected).
        method: MethodArg,
        /// FoI separation in communication ranges.
        separation: f64,
        /// Robot count.
        robots: usize,
    },
    /// `anr lint [--root DIR] [--baseline FILE] [--jsonl FILE]
    /// [--graph FILE] [--panics FILE] [--report panics] [--workers N]
    /// [--deny] [--write-baseline] [--list-rules]`
    Lint {
        /// Workspace root to scan.
        root: PathBuf,
        /// Baseline file overriding `<root>/lint.allow.toml`.
        baseline: Option<PathBuf>,
        /// Also write the findings as JSONL here.
        jsonl: Option<PathBuf>,
        /// Write the cross-crate call graph (`anr-lint-graph/1`) here.
        graph: Option<PathBuf>,
        /// Write the panic-reachability report (`anr-lint-panics/1`) here.
        panics: Option<PathBuf>,
        /// Print the panic-reachability report instead of the findings.
        report_panics: bool,
        /// Scan worker threads (0 = auto); output is worker-count
        /// independent.
        workers: usize,
        /// Exit non-zero on any non-baselined finding.
        deny: bool,
        /// Regenerate the baseline file instead of reporting.
        write_baseline: bool,
        /// Print the rule table instead of scanning.
        list_rules: bool,
    },
    /// `anr info` — the scenario catalog.
    Info,
    /// `anr help` / `--help`.
    Help,
}

/// A full CLI invocation: global flags plus the subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// `--trace <file.jsonl>`: write every trace event here.
    pub trace: Option<PathBuf>,
    /// The subcommand.
    pub command: Command,
}

/// Argument-parsing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArgError {
    /// No subcommand given.
    NoCommand,
    /// Unknown subcommand.
    UnknownCommand {
        /// The offending word.
        got: String,
    },
    /// Unknown flag for the subcommand.
    UnknownFlag {
        /// The offending flag.
        flag: String,
    },
    /// A flag is missing its value.
    MissingValue {
        /// The flag without a value.
        flag: String,
    },
    /// A flag's value failed to parse.
    BadValue {
        /// The flag.
        flag: &'static str,
        /// The raw value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
    /// A required flag is absent.
    MissingFlag {
        /// The absent flag.
        flag: &'static str,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::NoCommand => write!(f, "no command given (try `anr help`)"),
            ArgError::UnknownCommand { got } => {
                write!(f, "unknown command `{got}` (try `anr help`)")
            }
            ArgError::UnknownFlag { flag } => write!(f, "unknown flag `{flag}`"),
            ArgError::MissingValue { flag } => write!(f, "flag `{flag}` needs a value"),
            ArgError::BadValue {
                flag,
                value,
                expected,
            } => write!(f, "bad value `{value}` for {flag} (expected {expected})"),
            ArgError::MissingFlag { flag } => write!(f, "required flag `{flag}` missing"),
        }
    }
}

impl Error for ArgError {}

/// The help text.
pub(crate) const HELP: &str = "\
anr — optimal marching of autonomous networked robots (ICDCS 2016)

USAGE:
  anr [--trace <file.jsonl>] <command> [flags]

COMMANDS:
  anr scenario --id <1-7> [--method a|b|direct|hungarian|all]
               [--separation <ranges>] [--robots <n>]
               (`march` is an alias for `scenario`)
  anr sweep    --id <1-7> [--quick] [--charts <dir>]
  anr render   --id <1-7> [--out <dir>] [--separation <ranges>]
  anr mission  [--stops <k>] [--robots <n>]
  anr fault-sweep [--id <1-7>] [--robots <n>] [--loss <p,p,...>]
               [--crashes <k,k,...>] [--seed <s>] [--workers <w>]
               [--engine sync|event] [--out <file.json>]
  anr audit    [--id <1-7>] [--method a|b] [--separation <ranges>]
               [--robots <n>]
  anr bench    [--smoke] [--repeats <n>] [--tier10k] [--against <f>]
               [--distsim] [--large]
               [--ckpt <file>] [--out <file.json>]
  anr lint     [--root <dir>] [--baseline <file>] [--jsonl <file>]
               [--graph <file>] [--panics <file>] [--report panics]
               [--workers <n>] [--deny] [--write-baseline]
               [--list-rules]
  anr info
  anr help

GLOBAL FLAGS:
  --trace <file.jsonl>   write structured trace events (pipeline stage
                         spans, solver iterations, audit violations,
                         fault-sweep cells) as JSON Lines

`anr audit` re-checks the continuous-time connectivity guarantee with
the closed-form per-link extremum (no sampling) and exits non-zero if
any audited transition ever disconnects.

`anr fault-sweep --engine event` runs the grid on the discrete-event
engine (anr-eventsim); the JSON is byte-identical to the synchronous
engine, but dormant robots cost nothing, so much larger swarms fit the
same budget. `anr bench --distsim` times that engine's n-scaling tier
(10k and 100k robots; 10⁶ with --large) plus checkpoint save/restore,
writing BENCH_distsim.json; `--ckpt <file>` also writes the 10k-robot
snapshot as an artifact.

`anr lint` runs the workspace determinism & panic-safety analyzer
(anr-lint) against the checked-in `lint.allow.toml` baseline; with
`--deny` it exits non-zero on any non-baselined finding. `--graph` and
`--panics` write the cross-crate call graph and pub-surface panic
reachability as JSONL; `--report panics` prints the latter instead of
the findings; `--write-baseline` regenerates the baseline in place.
";

struct Cursor {
    args: Vec<String>,
    pos: usize,
}

impl Cursor {
    fn next(&mut self) -> Option<String> {
        let v = self.args.get(self.pos).cloned();
        if v.is_some() {
            self.pos += 1;
        }
        v
    }

    fn value_for(&mut self, flag: &str) -> Result<String, ArgError> {
        self.next().ok_or(ArgError::MissingValue {
            flag: flag.to_string(),
        })
    }
}

fn parse_num<T: std::str::FromStr>(
    flag: &'static str,
    raw: &str,
    expected: &'static str,
) -> Result<T, ArgError> {
    raw.parse().map_err(|_| ArgError::BadValue {
        flag,
        value: raw.to_string(),
        expected,
    })
}

/// Parses a comma-separated list like `0,0.1,0.2`.
fn parse_list<T: std::str::FromStr>(
    flag: &'static str,
    raw: &str,
    expected: &'static str,
) -> Result<Vec<T>, ArgError> {
    raw.split(',')
        .map(|part| parse_num(flag, part.trim(), expected))
        .collect()
}

/// Parses command-line arguments (exclusive of the program name).
///
/// # Errors
///
/// [`ArgError`] describing the first problem encountered.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Command, ArgError> {
    let mut cur = Cursor {
        args: args.into_iter().collect(),
        pos: 0,
    };
    let cmd = cur.next().ok_or(ArgError::NoCommand)?;
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "info" => Ok(Command::Info),
        "audit" => {
            let mut id = None;
            let mut method = MethodArg::OursA;
            let mut separation = 30.0;
            let mut robots = 144usize;
            while let Some(flag) = cur.next() {
                match flag.as_str() {
                    "--id" => id = Some(parse_num::<u8>("--id", &cur.value_for("--id")?, "1-7")?),
                    "--method" => method = MethodArg::parse(&cur.value_for("--method")?)?,
                    "--separation" => {
                        separation =
                            parse_num("--separation", &cur.value_for("--separation")?, "a number")?
                    }
                    "--robots" => {
                        robots = parse_num("--robots", &cur.value_for("--robots")?, "an integer")?
                    }
                    other => {
                        return Err(ArgError::UnknownFlag {
                            flag: other.to_string(),
                        })
                    }
                }
            }
            Ok(Command::Audit {
                id,
                method,
                separation,
                robots,
            })
        }
        "scenario" | "march" => {
            let mut id = None;
            let mut method = MethodArg::All;
            let mut separation = 30.0;
            let mut robots = 144usize;
            while let Some(flag) = cur.next() {
                match flag.as_str() {
                    "--id" => id = Some(parse_num::<u8>("--id", &cur.value_for("--id")?, "1-7")?),
                    "--method" => method = MethodArg::parse(&cur.value_for("--method")?)?,
                    "--separation" => {
                        separation =
                            parse_num("--separation", &cur.value_for("--separation")?, "a number")?
                    }
                    "--robots" => {
                        robots = parse_num("--robots", &cur.value_for("--robots")?, "an integer")?
                    }
                    other => {
                        return Err(ArgError::UnknownFlag {
                            flag: other.to_string(),
                        })
                    }
                }
            }
            Ok(Command::Scenario {
                id: id.ok_or(ArgError::MissingFlag { flag: "--id" })?,
                method,
                separation,
                robots,
            })
        }
        "sweep" => {
            let mut id = None;
            let mut quick = false;
            let mut charts = None;
            while let Some(flag) = cur.next() {
                match flag.as_str() {
                    "--id" => id = Some(parse_num::<u8>("--id", &cur.value_for("--id")?, "1-7")?),
                    "--quick" => quick = true,
                    "--charts" => charts = Some(PathBuf::from(cur.value_for("--charts")?)),
                    other => {
                        return Err(ArgError::UnknownFlag {
                            flag: other.to_string(),
                        })
                    }
                }
            }
            Ok(Command::Sweep {
                id: id.ok_or(ArgError::MissingFlag { flag: "--id" })?,
                quick,
                charts,
            })
        }
        "render" => {
            let mut id = None;
            let mut out = PathBuf::from("target/figures");
            let mut separation = 30.0;
            while let Some(flag) = cur.next() {
                match flag.as_str() {
                    "--id" => id = Some(parse_num::<u8>("--id", &cur.value_for("--id")?, "1-7")?),
                    "--out" => out = PathBuf::from(cur.value_for("--out")?),
                    "--separation" => {
                        separation =
                            parse_num("--separation", &cur.value_for("--separation")?, "a number")?
                    }
                    other => {
                        return Err(ArgError::UnknownFlag {
                            flag: other.to_string(),
                        })
                    }
                }
            }
            Ok(Command::Render {
                id: id.ok_or(ArgError::MissingFlag { flag: "--id" })?,
                out,
                separation,
            })
        }
        "mission" => {
            let mut stops = 3usize;
            let mut robots = 144usize;
            while let Some(flag) = cur.next() {
                match flag.as_str() {
                    "--stops" => {
                        stops = parse_num("--stops", &cur.value_for("--stops")?, "an integer ≥ 2")?
                    }
                    "--robots" => {
                        robots = parse_num("--robots", &cur.value_for("--robots")?, "an integer")?
                    }
                    other => {
                        return Err(ArgError::UnknownFlag {
                            flag: other.to_string(),
                        })
                    }
                }
            }
            Ok(Command::Mission { stops, robots })
        }
        "fault-sweep" => {
            let mut id = 1u8;
            let mut robots = 64usize;
            let mut loss = vec![0.0, 0.05, 0.1, 0.2];
            let mut crashes = vec![0usize, 1, 2];
            let mut seed = 42u64;
            let mut workers = 0usize;
            let mut engine = EngineArg::default();
            let mut out = None;
            while let Some(flag) = cur.next() {
                match flag.as_str() {
                    "--id" => id = parse_num("--id", &cur.value_for("--id")?, "1-7")?,
                    "--robots" => {
                        robots = parse_num("--robots", &cur.value_for("--robots")?, "an integer")?
                    }
                    "--loss" => {
                        loss = parse_list(
                            "--loss",
                            &cur.value_for("--loss")?,
                            "comma-separated probabilities",
                        )?
                    }
                    "--crashes" => {
                        crashes = parse_list(
                            "--crashes",
                            &cur.value_for("--crashes")?,
                            "comma-separated integers",
                        )?
                    }
                    "--seed" => {
                        seed = parse_num("--seed", &cur.value_for("--seed")?, "an integer")?
                    }
                    "--workers" => {
                        workers = parse_num(
                            "--workers",
                            &cur.value_for("--workers")?,
                            "an integer (0 = auto)",
                        )?
                    }
                    "--engine" => {
                        engine = match cur.value_for("--engine")?.as_str() {
                            "sync" => EngineArg::Sync,
                            "event" => EngineArg::Event,
                            other => {
                                return Err(ArgError::BadValue {
                                    flag: "--engine",
                                    value: other.to_string(),
                                    expected: "sync or event",
                                })
                            }
                        }
                    }
                    "--out" => out = Some(PathBuf::from(cur.value_for("--out")?)),
                    other => {
                        return Err(ArgError::UnknownFlag {
                            flag: other.to_string(),
                        })
                    }
                }
            }
            Ok(Command::FaultSweep {
                id,
                robots,
                loss,
                crashes,
                seed,
                workers,
                engine,
                out,
            })
        }
        "bench" => {
            let mut smoke = false;
            let mut repeats = 5usize;
            let mut distsim = false;
            let mut large = false;
            let mut ckpt = None;
            let mut tier10k = false;
            let mut against = None;
            let mut out: Option<PathBuf> = None;
            while let Some(flag) = cur.next() {
                match flag.as_str() {
                    "--smoke" => smoke = true,
                    "--repeats" => {
                        repeats =
                            parse_num("--repeats", &cur.value_for("--repeats")?, "an integer ≥ 1")?
                    }
                    "--distsim" => distsim = true,
                    "--large" => large = true,
                    "--ckpt" => ckpt = Some(PathBuf::from(cur.value_for("--ckpt")?)),
                    "--tier10k" => tier10k = true,
                    "--against" => against = Some(PathBuf::from(cur.value_for("--against")?)),
                    "--out" => out = Some(PathBuf::from(cur.value_for("--out")?)),
                    other => {
                        return Err(ArgError::UnknownFlag {
                            flag: other.to_string(),
                        })
                    }
                }
            }
            if repeats == 0 {
                return Err(ArgError::BadValue {
                    flag: "--repeats",
                    value: "0".to_string(),
                    expected: "an integer ≥ 1",
                });
            }
            if (large || ckpt.is_some()) && !distsim {
                return Err(ArgError::BadValue {
                    flag: if large { "--large" } else { "--ckpt" },
                    value: "set".to_string(),
                    expected: "only valid together with --distsim",
                });
            }
            if (tier10k || against.is_some()) && distsim {
                return Err(ArgError::BadValue {
                    flag: if tier10k { "--tier10k" } else { "--against" },
                    value: "set".to_string(),
                    expected: "only valid without --distsim",
                });
            }
            let out = out.unwrap_or_else(|| {
                PathBuf::from(if distsim {
                    "BENCH_distsim.json"
                } else {
                    "BENCH_pipeline.json"
                })
            });
            Ok(Command::Bench {
                smoke,
                repeats,
                distsim,
                large,
                ckpt,
                tier10k,
                against,
                out,
            })
        }
        "lint" => {
            let mut root = PathBuf::from(".");
            let mut baseline = None;
            let mut jsonl = None;
            let mut graph = None;
            let mut panics = None;
            let mut report_panics = false;
            let mut workers = 1;
            let mut deny = false;
            let mut write_baseline = false;
            let mut list_rules = false;
            while let Some(flag) = cur.next() {
                match flag.as_str() {
                    "--root" => root = PathBuf::from(cur.value_for("--root")?),
                    "--baseline" => baseline = Some(PathBuf::from(cur.value_for("--baseline")?)),
                    "--jsonl" => jsonl = Some(PathBuf::from(cur.value_for("--jsonl")?)),
                    "--graph" => graph = Some(PathBuf::from(cur.value_for("--graph")?)),
                    "--panics" => panics = Some(PathBuf::from(cur.value_for("--panics")?)),
                    "--report" => {
                        let value = cur.value_for("--report")?;
                        if value != "panics" {
                            return Err(ArgError::BadValue {
                                flag: "--report",
                                value,
                                expected: "`panics`",
                            });
                        }
                        report_panics = true;
                    }
                    "--workers" => {
                        let value = cur.value_for("--workers")?;
                        workers = value.parse().map_err(|_| ArgError::BadValue {
                            flag: "--workers",
                            value,
                            expected: "an integer ≥ 0",
                        })?;
                    }
                    "--deny" => deny = true,
                    "--write-baseline" => write_baseline = true,
                    "--list-rules" => list_rules = true,
                    other => {
                        return Err(ArgError::UnknownFlag {
                            flag: other.to_string(),
                        })
                    }
                }
            }
            Ok(Command::Lint {
                root,
                baseline,
                jsonl,
                graph,
                panics,
                report_panics,
                workers,
                deny,
                write_baseline,
                list_rules,
            })
        }
        other => Err(ArgError::UnknownCommand {
            got: other.to_string(),
        }),
    }
}

/// Parses a full invocation: the global `--trace <file>` flag (accepted
/// anywhere on the command line) plus the subcommand.
///
/// # Errors
///
/// [`ArgError`] describing the first problem encountered.
pub fn parse_invocation<I: IntoIterator<Item = String>>(args: I) -> Result<Invocation, ArgError> {
    let mut trace = None;
    let mut rest = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        if arg == "--trace" {
            trace = Some(PathBuf::from(it.next().ok_or(ArgError::MissingValue {
                flag: "--trace".to_string(),
            })?));
        } else {
            rest.push(arg);
        }
    }
    Ok(Invocation {
        trace,
        command: parse_args(rest)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Command, ArgError> {
        parse_args(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_scenario_defaults() {
        let cmd = parse(&["scenario", "--id", "3"]).unwrap();
        assert_eq!(
            cmd,
            Command::Scenario {
                id: 3,
                method: MethodArg::All,
                separation: 30.0,
                robots: 144,
            }
        );
    }

    #[test]
    fn parses_scenario_full() {
        let cmd = parse(&[
            "scenario",
            "--id",
            "7",
            "--method",
            "b",
            "--separation",
            "50",
            "--robots",
            "64",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Scenario {
                id: 7,
                method: MethodArg::OursB,
                separation: 50.0,
                robots: 64,
            }
        );
    }

    #[test]
    fn method_aliases() {
        assert_eq!(MethodArg::parse("a").unwrap(), MethodArg::OursA);
        assert_eq!(MethodArg::parse("ours_b").unwrap(), MethodArg::OursB);
        assert_eq!(MethodArg::parse("hung").unwrap(), MethodArg::Hungarian);
        assert!(MethodArg::parse("bogus").is_err());
    }

    #[test]
    fn sweep_flags() {
        let cmd = parse(&["sweep", "--id", "2", "--quick", "--charts", "out"]).unwrap();
        assert_eq!(
            cmd,
            Command::Sweep {
                id: 2,
                quick: true,
                charts: Some(PathBuf::from("out")),
            }
        );
    }

    #[test]
    fn missing_required_id() {
        assert_eq!(
            parse(&["sweep"]),
            Err(ArgError::MissingFlag { flag: "--id" })
        );
    }

    #[test]
    fn missing_value() {
        assert!(matches!(
            parse(&["scenario", "--id"]),
            Err(ArgError::MissingValue { .. })
        ));
    }

    #[test]
    fn unknown_flag_and_command() {
        assert!(matches!(
            parse(&["scenario", "--id", "1", "--bogus", "x"]),
            Err(ArgError::UnknownFlag { .. })
        ));
        assert!(matches!(
            parse(&["frobnicate"]),
            Err(ArgError::UnknownCommand { .. })
        ));
        assert_eq!(parse(&[]), Err(ArgError::NoCommand));
    }

    #[test]
    fn info_parses() {
        assert_eq!(parse(&["info"]).unwrap(), Command::Info);
    }

    #[test]
    fn fault_sweep_defaults() {
        let cmd = parse(&["fault-sweep"]).unwrap();
        assert_eq!(
            cmd,
            Command::FaultSweep {
                id: 1,
                robots: 64,
                loss: vec![0.0, 0.05, 0.1, 0.2],
                crashes: vec![0, 1, 2],
                seed: 42,
                workers: 0,
                engine: EngineArg::Sync,
                out: None,
            }
        );
    }

    #[test]
    fn fault_sweep_full() {
        let cmd = parse(&[
            "fault-sweep",
            "--id",
            "3",
            "--robots",
            "36",
            "--loss",
            "0,0.3",
            "--crashes",
            "0,2,4",
            "--seed",
            "7",
            "--workers",
            "4",
            "--engine",
            "event",
            "--out",
            "grid.json",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::FaultSweep {
                id: 3,
                robots: 36,
                loss: vec![0.0, 0.3],
                crashes: vec![0, 2, 4],
                seed: 7,
                workers: 4,
                engine: EngineArg::Event,
                out: Some(PathBuf::from("grid.json")),
            }
        );
        // The engine defaults to the synchronous harness.
        assert!(matches!(
            parse(&["fault-sweep"]).unwrap(),
            Command::FaultSweep {
                engine: EngineArg::Sync,
                ..
            }
        ));
        assert!(matches!(
            parse(&["fault-sweep", "--engine", "quantum"]),
            Err(ArgError::BadValue {
                flag: "--engine",
                ..
            })
        ));
    }

    #[test]
    fn bench_defaults_and_flags() {
        assert_eq!(
            parse(&["bench"]).unwrap(),
            Command::Bench {
                smoke: false,
                repeats: 5,
                distsim: false,
                large: false,
                ckpt: None,
                tier10k: false,
                against: None,
                out: PathBuf::from("BENCH_pipeline.json"),
            }
        );
        assert_eq!(
            parse(&["bench", "--smoke", "--repeats", "3", "--out", "b.json"]).unwrap(),
            Command::Bench {
                smoke: true,
                repeats: 3,
                distsim: false,
                large: false,
                ckpt: None,
                tier10k: false,
                against: None,
                out: PathBuf::from("b.json"),
            }
        );
        assert!(matches!(
            parse(&["bench", "--repeats", "0"]),
            Err(ArgError::BadValue {
                flag: "--repeats",
                ..
            })
        ));
    }

    #[test]
    fn bench_distsim_tier_flags() {
        // --distsim switches the default output file.
        assert_eq!(
            parse(&["bench", "--distsim", "--smoke"]).unwrap(),
            Command::Bench {
                smoke: true,
                repeats: 5,
                distsim: true,
                large: false,
                ckpt: None,
                tier10k: false,
                against: None,
                out: PathBuf::from("BENCH_distsim.json"),
            }
        );
        assert_eq!(
            parse(&["bench", "--distsim", "--large", "--ckpt", "c.ckpt"]).unwrap(),
            Command::Bench {
                smoke: false,
                repeats: 5,
                distsim: true,
                large: true,
                ckpt: Some(PathBuf::from("c.ckpt")),
                tier10k: false,
                against: None,
                out: PathBuf::from("BENCH_distsim.json"),
            }
        );
        // Pipeline-tier flags are rejected with --distsim.
        assert!(matches!(
            parse(&["bench", "--distsim", "--tier10k"]),
            Err(ArgError::BadValue {
                flag: "--tier10k",
                ..
            })
        ));
        let parsed = parse(&["bench", "--tier10k", "--against", "base.json"]).unwrap();
        assert!(matches!(
            parsed,
            Command::Bench {
                tier10k: true,
                ref against,
                ..
            } if against.as_deref() == Some(std::path::Path::new("base.json"))
        ));
        // --large / --ckpt only make sense for the distsim tier.
        assert!(matches!(
            parse(&["bench", "--large"]),
            Err(ArgError::BadValue {
                flag: "--large",
                ..
            })
        ));
        assert!(matches!(
            parse(&["bench", "--ckpt", "c.ckpt"]),
            Err(ArgError::BadValue { flag: "--ckpt", .. })
        ));
    }

    #[test]
    fn fault_sweep_bad_list_rejected() {
        assert!(matches!(
            parse(&["fault-sweep", "--loss", "0,zebra"]),
            Err(ArgError::BadValue { flag: "--loss", .. })
        ));
    }

    #[test]
    fn help_variants() {
        for h in [&["help"][..], &["--help"], &["-h"]] {
            assert_eq!(parse(h).unwrap(), Command::Help);
        }
    }

    #[test]
    fn march_is_a_scenario_alias() {
        assert_eq!(
            parse(&["march", "--id", "2"]).unwrap(),
            parse(&["scenario", "--id", "2"]).unwrap(),
        );
    }

    #[test]
    fn audit_defaults_and_flags() {
        assert_eq!(
            parse(&["audit"]).unwrap(),
            Command::Audit {
                id: None,
                method: MethodArg::OursA,
                separation: 30.0,
                robots: 144,
            }
        );
        assert_eq!(
            parse(&["audit", "--id", "4", "--method", "b", "--robots", "36"]).unwrap(),
            Command::Audit {
                id: Some(4),
                method: MethodArg::OursB,
                separation: 30.0,
                robots: 36,
            }
        );
    }

    #[test]
    fn invocation_extracts_global_trace_flag() {
        let inv = parse_invocation(
            ["--trace", "out.jsonl", "march", "--id", "1"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(inv.trace, Some(PathBuf::from("out.jsonl")));
        assert!(matches!(inv.command, Command::Scenario { id: 1, .. }));

        // The flag is global: it also parses after the subcommand.
        let inv = parse_invocation(
            ["audit", "--id", "3", "--trace", "t.jsonl"]
                .iter()
                .map(|s| s.to_string()),
        )
        .unwrap();
        assert_eq!(inv.trace, Some(PathBuf::from("t.jsonl")));
        assert!(matches!(inv.command, Command::Audit { id: Some(3), .. }));

        let inv = parse_invocation(["info"].iter().map(|s| s.to_string())).unwrap();
        assert_eq!(inv.trace, None);

        assert!(matches!(
            parse_invocation(
                ["scenario", "--id", "1", "--trace"]
                    .iter()
                    .map(|s| s.to_string())
            ),
            Err(ArgError::MissingValue { .. })
        ));
    }

    #[test]
    fn lint_defaults_and_flags() {
        assert_eq!(
            parse(&["lint"]).unwrap(),
            Command::Lint {
                root: PathBuf::from("."),
                baseline: None,
                jsonl: None,
                graph: None,
                panics: None,
                report_panics: false,
                workers: 1,
                deny: false,
                write_baseline: false,
                list_rules: false,
            }
        );
        assert_eq!(
            parse(&[
                "lint",
                "--root",
                "ws",
                "--baseline",
                "allow.toml",
                "--jsonl",
                "out.jsonl",
                "--graph",
                "graph.jsonl",
                "--panics",
                "panics.jsonl",
                "--report",
                "panics",
                "--workers",
                "4",
                "--deny",
                "--write-baseline",
                "--list-rules",
            ])
            .unwrap(),
            Command::Lint {
                root: PathBuf::from("ws"),
                baseline: Some(PathBuf::from("allow.toml")),
                jsonl: Some(PathBuf::from("out.jsonl")),
                graph: Some(PathBuf::from("graph.jsonl")),
                panics: Some(PathBuf::from("panics.jsonl")),
                report_panics: true,
                workers: 4,
                deny: true,
                write_baseline: true,
                list_rules: true,
            }
        );
        assert!(matches!(
            parse(&["lint", "--report", "calls"]),
            Err(ArgError::BadValue {
                flag: "--report",
                ..
            })
        ));
    }

    #[test]
    fn bad_number_reported() {
        assert!(matches!(
            parse(&["scenario", "--id", "three"]),
            Err(ArgError::BadValue { flag: "--id", .. })
        ));
    }

    #[test]
    fn errors_display() {
        for e in [
            ArgError::NoCommand,
            ArgError::UnknownCommand { got: "x".into() },
            ArgError::UnknownFlag { flag: "--x".into() },
            ArgError::MissingValue { flag: "--x".into() },
            ArgError::MissingFlag { flag: "--id" },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
