//! The `anr` binary: see `anr help`.

use anr_cli::{parse_invocation, run_command, run_command_traced, Command};
use anr_trace::Tracer;

fn main() {
    let invocation = match parse_invocation(std::env::args().skip(1)) {
        Ok(inv) => inv,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            let _ = run_command(Command::Help);
            std::process::exit(2);
        }
    };
    let tracer = match &invocation.trace {
        Some(path) => match Tracer::jsonl_file(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot open trace file {}: {e}", path.display());
                std::process::exit(1);
            }
        },
        None => Tracer::disabled(),
    };
    let result = run_command_traced(invocation.command, &tracer);
    if let Err(e) = tracer.flush() {
        eprintln!("error: flushing trace: {e}");
        std::process::exit(1);
    }
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
