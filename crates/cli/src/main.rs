//! The `anr` binary: see `anr help`.

use anr_cli::{parse_args, run_command, Command};

fn main() {
    let command = match parse_args(std::env::args().skip(1)) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            let _ = run_command(Command::Help);
            std::process::exit(2);
        }
    };
    if let Err(e) = run_command(command) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
