//! Command execution for the `anr` binary.

use crate::{Command, EngineArg, MethodArg};
use anr_geom::Point;
use anr_march::{
    audit_piecewise, direct_translation, hungarian_direct, march_mission, march_traced,
    run_fault_sweep_traced, MarchConfig, MarchError, MarchOutcome, MarchProblem, Method,
    MetricsError, Mission, SweepConfig, SweepEngine,
};
use anr_netgraph::UnitDiskGraph;
use anr_scenarios::{blob, build_scenario, ScenarioError, ScenarioParams};
use anr_trace::Tracer;
use anr_viz::{palette, SvgCanvas};
use std::error::Error;
use std::fmt;

/// Errors surfaced by the CLI commands.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// Scenario construction failed.
    Scenario(ScenarioError),
    /// A marching run failed.
    March(MarchError),
    /// File output failed.
    Io(std::io::Error),
    /// A parameter is out of range for the command.
    BadParameter(String),
    /// The fault-sweep simulation failed.
    Sim(anr_distsim::SimError),
    /// The continuous-time audit itself failed to run.
    Metrics(MetricsError),
    /// `anr audit` found a transition that disconnects.
    AuditFailed {
        /// Scenario ids whose transition lost connectivity.
        scenarios: Vec<u8>,
    },
    /// The lint run itself failed (I/O or a malformed baseline).
    Lint(anr_lint::LintError),
    /// `anr lint --deny` found non-baselined violations.
    LintFailed {
        /// Number of findings not covered by the baseline.
        open: usize,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Scenario(e) => write!(f, "scenario: {e}"),
            CliError::March(e) => write!(f, "march: {e}"),
            CliError::Io(e) => write!(f, "io: {e}"),
            CliError::BadParameter(msg) => write!(f, "bad parameter: {msg}"),
            CliError::Sim(e) => write!(f, "simulation: {e}"),
            CliError::Metrics(e) => write!(f, "audit: {e}"),
            CliError::AuditFailed { scenarios } => {
                let ids: Vec<String> = scenarios.iter().map(u8::to_string).collect();
                write!(
                    f,
                    "audit failed: network disconnects in scenario(s) {}",
                    ids.join(", ")
                )
            }
            CliError::Lint(e) => write!(f, "lint: {e}"),
            CliError::LintFailed { open } => {
                write!(f, "lint failed: {open} non-baselined finding(s)")
            }
        }
    }
}

impl Error for CliError {}

impl From<MetricsError> for CliError {
    fn from(e: MetricsError) -> Self {
        CliError::Metrics(e)
    }
}

impl From<anr_distsim::SimError> for CliError {
    fn from(e: anr_distsim::SimError) -> Self {
        CliError::Sim(e)
    }
}

impl From<ScenarioError> for CliError {
    fn from(e: ScenarioError) -> Self {
        CliError::Scenario(e)
    }
}

impl From<MarchError> for CliError {
    fn from(e: MarchError) -> Self {
        CliError::March(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

fn scenario_problem(id: u8, separation: f64, robots: usize) -> Result<MarchProblem, CliError> {
    let s = build_scenario(
        id,
        &ScenarioParams {
            robots,
            separation_ranges: separation,
            ..Default::default()
        },
    )?;
    Ok(MarchProblem::with_lattice_deployment(
        s.m1, s.m2, s.robots, s.range,
    )?)
}

/// Normalized times for a timeline of `len` rows, matching the spacing
/// `evaluate_timeline` uses when it computes the reported metrics.
fn uniform_times(len: usize) -> Vec<f64> {
    if len <= 1 {
        vec![0.0]
    } else {
        let steps = (len - 1) as f64;
        (0..len).map(|k| k as f64 / steps).collect()
    }
}

fn print_outcome(name: &str, out: &MarchOutcome) {
    println!(
        "{:<20} L = {:.3}  D = {:>9.0} m  C = {}  preserved {}/{} links, {} new",
        name,
        out.metrics.stable_link_ratio,
        out.metrics.total_distance,
        out.metrics.global_connectivity,
        out.metrics.preserved_links,
        out.metrics.initial_links,
        out.metrics.new_links,
    );
}

/// Executes a parsed command with tracing disabled.
///
/// # Errors
///
/// [`CliError`] on any failure; `main` prints it and exits non-zero.
pub fn run_command(command: Command) -> Result<(), CliError> {
    run_command_traced(command, &Tracer::disabled())
}

/// Executes a parsed command, emitting structured events to `tracer`
/// (pipeline stage spans, solver iterations, audit violations,
/// fault-sweep cells). With [`Tracer::disabled`] this is exactly
/// [`run_command`]: tracing is observation only.
///
/// # Errors
///
/// [`CliError`] on any failure; `main` prints it and exits non-zero.
pub fn run_command_traced(command: Command, tracer: &Tracer) -> Result<(), CliError> {
    match command {
        Command::Help => {
            print!("{}", crate::args::HELP);
            Ok(())
        }
        Command::Info => {
            println!(
                "{:<4} {:<50} {:>12} {:>12} {:>6}",
                "id", "scenario", "M1 area m²", "M2 area m²", "holes"
            );
            for id in 1..=7u8 {
                let s = build_scenario(id, &ScenarioParams::default())?;
                println!(
                    "{:<4} {:<50} {:>12.0} {:>12.0} {:>3}+{}",
                    id,
                    s.name,
                    s.m1.area(),
                    s.m2.area(),
                    s.m1.holes().len(),
                    s.m2.holes().len(),
                );
            }
            println!("\ndefaults: 144 robots, r_c = 80 m, separation 30 × r_c");
            Ok(())
        }
        Command::Scenario {
            id,
            method,
            separation,
            robots,
        } => {
            let problem = scenario_problem(id, separation, robots)?;
            let config = MarchConfig::default();
            println!(
                "scenario {id}: {} robots, separation {:.0} m",
                problem.num_robots(),
                separation * problem.range,
            );
            let runs: Vec<(&str, MethodArg)> = match method {
                MethodArg::All => vec![
                    ("our method (a)", MethodArg::OursA),
                    ("our method (b)", MethodArg::OursB),
                    ("direct translation", MethodArg::Direct),
                    ("Hungarian", MethodArg::Hungarian),
                ],
                m => vec![(label_of(m), m)],
            };
            for (name, m) in runs {
                let out = run_method(&problem, m, &config, tracer)?;
                print_outcome(name, &out);
            }
            Ok(())
        }
        Command::Sweep { id, quick, charts } => {
            let separations: Vec<f64> = if quick {
                vec![10.0, 40.0, 100.0]
            } else {
                (1..=10).map(|k| 10.0 * k as f64).collect()
            };
            let config = MarchConfig::default();
            println!("scenario,separation_ranges,method,total_distance_m,stable_link_ratio,global_connectivity");
            let mut rows: Vec<(f64, &str, f64, f64)> = Vec::new();
            for &sep in &separations {
                let problem = scenario_problem(id, sep, 144)?;
                for (name, m) in [
                    ("ours_a", MethodArg::OursA),
                    ("ours_b", MethodArg::OursB),
                    ("direct_translation", MethodArg::Direct),
                    ("hungarian", MethodArg::Hungarian),
                ] {
                    let out = run_method(&problem, m, &config, tracer)?;
                    println!(
                        "{id},{sep},{name},{:.1},{:.4},{}",
                        out.metrics.total_distance,
                        out.metrics.stable_link_ratio,
                        out.metrics.global_connectivity,
                    );
                    rows.push((
                        sep,
                        name,
                        out.metrics.total_distance,
                        out.metrics.stable_link_ratio,
                    ));
                }
            }
            if let Some(dir) = charts {
                std::fs::create_dir_all(&dir)?;
                let mut chart = anr_viz::LineChart::new(
                    &format!("Scenario {id}: stable link ratio"),
                    "separation (× r_c)",
                    "L",
                );
                chart.y_from_zero(true);
                for name in ["ours_a", "ours_b", "direct_translation", "hungarian"] {
                    chart.add_series(
                        name,
                        rows.iter()
                            .filter(|(_, n, _, _)| *n == name)
                            .map(|&(s, _, _, l)| (s, l))
                            .collect(),
                    );
                }
                chart.save(dir.join(format!("scenario{id}_link_ratio.svg")))?;
                println!("chart written to {}", dir.display());
            }
            Ok(())
        }
        Command::Render {
            id,
            out,
            separation,
        } => {
            let problem = scenario_problem(id, separation, 144)?;
            let outcome = march_traced(
                &problem,
                Method::MaxStableLinks,
                &MarchConfig::default(),
                tracer,
            )?;
            std::fs::create_dir_all(&out)?;

            let initial = UnitDiskGraph::new(&problem.positions, problem.range);
            let mut svg = SvgCanvas::fitting([problem.m1.bbox()], 800.0);
            svg.deployment(&problem.m1, &problem.positions, &initial.links(), |_, _| {
                true
            });
            svg.save(out.join(format!("scenario{id}_before.svg")))?;

            let after = UnitDiskGraph::new(&outcome.final_positions, problem.range);
            let mut svg = SvgCanvas::fitting([problem.m2.bbox()], 800.0);
            svg.deployment(
                &problem.m2,
                &outcome.final_positions,
                &after.links(),
                |i, j| initial.has_link(i, j),
            );
            svg.save(out.join(format!("scenario{id}_after.svg")))?;

            let mut svg = SvgCanvas::fitting([problem.m1.bbox(), problem.m2.bbox()], 1200.0);
            svg.region(&problem.m1, palette::FOI_FILL, palette::FOI_STROKE);
            svg.region(&problem.m2, palette::FOI_FILL, palette::FOI_STROKE);
            for path in outcome.transition.paths() {
                svg.polyline(path.waypoints(), palette::TRAJECTORY, 0.5);
            }
            svg.save(out.join(format!("scenario{id}_trajectories.svg")))?;

            println!(
                "rendered scenario {id} to {} (L = {:.3}, C = {})",
                out.display(),
                outcome.metrics.stable_link_ratio,
                outcome.metrics.global_connectivity,
            );
            Ok(())
        }
        Command::FaultSweep {
            id,
            robots,
            loss,
            crashes,
            seed,
            workers,
            engine,
            out,
        } => {
            let problem = scenario_problem(id, 10.0, robots)?;
            if let Some(&c) = crashes.iter().find(|&&c| c >= problem.num_robots()) {
                return Err(CliError::BadParameter(format!(
                    "--crashes {c} but the deployment has {} robots",
                    problem.num_robots()
                )));
            }
            let config = SweepConfig {
                loss_rates: loss,
                crash_counts: crashes,
                seed,
                workers,
                engine: match engine {
                    EngineArg::Sync => SweepEngine::Synchronous,
                    EngineArg::Event => SweepEngine::Event,
                },
                ..Default::default()
            };
            let report =
                run_fault_sweep_traced(&problem.positions, problem.range, &config, tracer)?;
            let json = report.to_json();
            match out {
                Some(path) => {
                    std::fs::write(&path, &json)?;
                    eprintln!(
                        "fault sweep of scenario {id} ({} robots, {} cells/protocol) written to {}",
                        report.robots,
                        config.loss_rates.len() * config.crash_counts.len(),
                        path.display()
                    );
                }
                None => print!("{json}"),
            }
            Ok(())
        }
        Command::Bench {
            smoke,
            repeats,
            distsim: true,
            large,
            ckpt,
            out,
            ..
        } => {
            let report = anr_bench::run_distsim_bench(&anr_bench::DistsimBenchOptions {
                smoke,
                repeats,
                large,
            })
            .map_err(|e| CliError::BadParameter(e.to_string()))?;
            std::fs::write(&out, report.to_json())?;
            for series in &report.series {
                eprintln!(
                    "distsim {} n={}: run {:.1} ms ({} rounds, {} messages), \
                     save {:.2} ms / restore {:.2} ms ({} bytes), resume identical = {}",
                    series.protocol,
                    series.robots,
                    series.run_ms,
                    series.rounds,
                    series.sent,
                    series.save_ms,
                    series.restore_ms,
                    series.ckpt_bytes,
                    series.resume_identical,
                );
            }
            eprintln!(
                "distsim fault sweep (event engine, n={}): {:.1} ms over {} cells/protocol",
                report.sweep.robots, report.sweep.total_ms, report.sweep.cells,
            );
            if let Some(path) = ckpt {
                std::fs::write(&path, &report.checkpoint_artifact)?;
                eprintln!(
                    "checkpoint artifact ({} bytes) written to {}",
                    report.checkpoint_artifact.len(),
                    path.display()
                );
            }
            eprintln!("distsim benchmark written to {}", out.display());
            Ok(())
        }
        Command::Bench {
            smoke,
            repeats,
            distsim: false,
            tier10k,
            against,
            out,
            ..
        } => {
            let report = anr_bench::run_pipeline_bench(&anr_bench::BenchOptions {
                smoke,
                repeats,
                scale_tier: tier10k,
            })
            .map_err(|e| CliError::BadParameter(e.to_string()))?;
            std::fs::write(&out, report.to_json())?;
            if let Some(t) = &report.scale {
                eprintln!(
                    "scale tier: {} robots marched end-to-end in {:.0} ms \
                     ({} timeline rows, {} audit checks)",
                    t.robots, t.march_ms, t.timeline_rows, t.audit_checks,
                );
            }
            if let Some(baseline_path) = &against {
                let baseline = std::fs::read_to_string(baseline_path)?;
                let regressions = anr_bench::stage_regressions(&report, &baseline, 2.0, 10.0);
                if !regressions.is_empty() {
                    for r in &regressions {
                        eprintln!("stage regression: {r}");
                    }
                    return Err(CliError::BadParameter(format!(
                        "{} pipeline stage(s) regressed beyond 2x the baseline {}",
                        regressions.len(),
                        baseline_path.display(),
                    )));
                }
                eprintln!(
                    "stage medians within 2x of baseline {}",
                    baseline_path.display()
                );
            }
            for sc in &report.scenarios {
                eprintln!(
                    "scenario {}: {} robots, {} mesh vertices — PCG {:.1} ms vs GS {:.1} ms \
                     ({:.1}× speedup, max diff {:.1e})",
                    sc.id,
                    sc.robots,
                    sc.mesh_vertices,
                    sc.harmonic.pcg_ms,
                    sc.harmonic.gs_ms,
                    sc.harmonic.speedup,
                    sc.harmonic.max_position_diff,
                );
            }
            eprintln!(
                "fault sweep ({} cells/protocol): serial {:.1} ms vs {} workers {:.1} ms, \
                 byte-identical = {}",
                report.fault_sweep.cells,
                report.fault_sweep.serial_ms,
                report.fault_sweep.workers,
                report.fault_sweep.parallel_ms,
                report.fault_sweep.byte_identical,
            );
            eprintln!("benchmark trajectory written to {}", out.display());
            Ok(())
        }
        Command::Audit {
            id,
            method,
            separation,
            robots,
        } => {
            if method == MethodArg::All {
                return Err(CliError::BadParameter(
                    "audit needs a single method (a, b, direct, or hungarian)".to_string(),
                ));
            }
            let ids: Vec<u8> = match id {
                Some(i) => vec![i],
                None => (1..=7).collect(),
            };
            let config = MarchConfig::default();
            let mut failed = Vec::new();
            for id in ids {
                let problem = scenario_problem(id, separation, robots)?;
                let outcome = run_method(&problem, method, &config, tracer)?;
                let times = uniform_times(outcome.timeline.len());
                let report = audit_piecewise(&outcome.timeline, &times, problem.range, tracer)?;
                println!(
                    "scenario {id}: C = {}  L = {:.3}  ({}/{} initial links stable, {} violations)",
                    report.global_connectivity,
                    report.stable_link_ratio,
                    report.preserved_links,
                    report.initial_links,
                    report.violations.len(),
                );
                for v in &report.violations {
                    println!(
                        "  link ({}, {}) out of range on s in [{:.4}, {:.4}] (max distance {:.1} m)",
                        v.link.0, v.link.1, v.interval.0, v.interval.1, v.max_distance,
                    );
                }
                if report.global_connectivity != 1 {
                    failed.push(id);
                }
            }
            if failed.is_empty() {
                println!("audit: every audited transition stayed connected (C = 1)");
                Ok(())
            } else {
                Err(CliError::AuditFailed { scenarios: failed })
            }
        }
        Command::Lint {
            root,
            baseline,
            jsonl,
            graph,
            panics,
            report_panics,
            workers,
            deny,
            write_baseline,
            list_rules,
        } => {
            if list_rules {
                for rule in anr_lint::RULES {
                    println!(
                        "{:<3} {:<5} {}",
                        rule.id,
                        rule.severity.as_str(),
                        rule.summary
                    );
                }
                return Ok(());
            }
            let _span = tracer.span("lint");
            let options = anr_lint::LintOptions {
                root: root.clone(),
                baseline: baseline.clone(),
                workers,
            };
            if write_baseline {
                let baseline_path = baseline.unwrap_or_else(|| root.join("lint.allow.toml"));
                let existing = std::fs::read_to_string(&baseline_path).unwrap_or_default();
                let rendered =
                    anr_lint::write_baseline(&options, &existing).map_err(CliError::Lint)?;
                std::fs::write(&baseline_path, rendered)?;
                println!("baseline written to {}", baseline_path.display());
                return Ok(());
            }
            let report = anr_lint::lint_workspace(&options).map_err(CliError::Lint)?;
            tracer.counter_add("lint_files", report.files_scanned as u64);
            tracer.counter_add("lint_findings", report.findings.len() as u64);
            tracer.counter_add("lint_open", report.non_baselined() as u64);
            for (path, contents, what) in [
                (&jsonl, report.to_jsonl(), "findings JSONL"),
                (&graph, report.graph.to_jsonl(), "call graph"),
                (&panics, report.panics.to_jsonl(), "panic reachability"),
            ] {
                if let Some(path) = path {
                    std::fs::write(path, contents)?;
                    eprintln!("{what} written to {}", path.display());
                }
            }
            if report_panics {
                print!("{}", report.panics.to_human());
            } else {
                print!("{}", report.to_human());
            }
            if deny && report.non_baselined() > 0 {
                return Err(CliError::LintFailed {
                    open: report.non_baselined(),
                });
            }
            Ok(())
        }
        Command::Mission { stops, robots } => {
            if stops < 2 {
                return Err(CliError::BadParameter(
                    "--stops must be at least 2".to_string(),
                ));
            }
            // A seeded chain of blob FoIs spaced ~2.2 km apart.
            let fois = (0..stops)
                .map(|k| {
                    let center =
                        Point::new(2200.0 * k as f64, if k % 2 == 0 { 0.0 } else { 500.0 });
                    blob(center, 260_000.0, 100 + k as u64, 56)
                        .map(anr_geom::PolygonWithHoles::without_holes)
                })
                .collect::<Result<Vec<_>, _>>()?;
            let mission = Mission::new(fois, robots, 80.0);
            let outcome = march_mission(&mission, Method::MaxStableLinks, &MarchConfig::default())?;
            for (k, leg) in outcome.legs.iter().enumerate() {
                print_outcome(&format!("leg {} → {}", k + 1, k + 2), leg);
            }
            println!(
                "mission: D = {:.0} m, mean L = {:.3}, all legs connected = {}",
                outcome.metrics.total_distance,
                outcome.metrics.mean_stable_link_ratio,
                outcome.metrics.global_connectivity == 1,
            );
            Ok(())
        }
    }
}

fn label_of(m: MethodArg) -> &'static str {
    match m {
        MethodArg::OursA => "our method (a)",
        MethodArg::OursB => "our method (b)",
        MethodArg::Direct => "direct translation",
        MethodArg::Hungarian => "Hungarian",
        MethodArg::All => "all",
    }
}

fn run_method(
    problem: &MarchProblem,
    method: MethodArg,
    config: &MarchConfig,
    tracer: &Tracer,
) -> Result<MarchOutcome, CliError> {
    Ok(match method {
        MethodArg::OursA => march_traced(problem, Method::MaxStableLinks, config, tracer)?,
        MethodArg::OursB => march_traced(problem, Method::MinMovingDistance, config, tracer)?,
        MethodArg::Direct => direct_translation(problem, config)?,
        MethodArg::Hungarian => hungarian_direct(problem, config)?,
        MethodArg::All => unreachable!("expanded by the caller"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_runs() {
        run_command(Command::Help).unwrap();
    }

    #[test]
    fn info_runs() {
        run_command(Command::Info).unwrap();
    }

    #[test]
    fn scenario_single_method_runs() {
        run_command(Command::Scenario {
            id: 1,
            method: MethodArg::Hungarian,
            separation: 12.0,
            robots: 144,
        })
        .unwrap();
    }

    #[test]
    fn mission_too_few_stops_rejected() {
        assert!(matches!(
            run_command(Command::Mission {
                stops: 1,
                robots: 36
            }),
            Err(CliError::BadParameter(_))
        ));
    }

    #[test]
    fn render_writes_files() {
        let dir = std::env::temp_dir().join("anr_cli_render_test");
        run_command(Command::Render {
            id: 1,
            out: dir.clone(),
            separation: 12.0,
        })
        .unwrap();
        assert!(dir.join("scenario1_before.svg").exists());
        assert!(dir.join("scenario1_after.svg").exists());
        assert!(dir.join("scenario1_trajectories.svg").exists());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn errors_display() {
        let e = CliError::BadParameter("x".into());
        assert!(!e.to_string().is_empty());
        let e = CliError::AuditFailed {
            scenarios: vec![3, 5],
        };
        assert!(e.to_string().contains("3, 5"));
    }

    #[test]
    fn audit_certifies_one_scenario() {
        run_command(Command::Audit {
            id: Some(1),
            method: MethodArg::OursA,
            separation: 12.0,
            robots: 144,
        })
        .unwrap();
    }

    #[test]
    fn audit_rejects_method_all() {
        assert!(matches!(
            run_command(Command::Audit {
                id: Some(1),
                method: MethodArg::All,
                separation: 12.0,
                robots: 64,
            }),
            Err(CliError::BadParameter(_))
        ));
    }

    #[test]
    fn traced_scenario_emits_stage_spans() {
        let tracer = Tracer::ring(1 << 16);
        run_command_traced(
            Command::Scenario {
                id: 1,
                method: MethodArg::OursA,
                separation: 12.0,
                robots: 144,
            },
            &tracer,
        )
        .unwrap();
        let events = tracer.events();
        for stage in [
            "march",
            "triangulate",
            "harmonic_m1",
            "harmonic_m2",
            "lloyd",
        ] {
            assert!(
                events.iter().any(|e| e.name == stage),
                "missing stage span `{stage}` in CLI trace"
            );
        }
        assert!(events.iter().any(|e| e.name == "pcg_iter"));
    }

    #[test]
    fn fault_sweep_writes_json() {
        let path = std::env::temp_dir().join("anr_cli_fault_sweep_test.json");
        run_command(Command::FaultSweep {
            id: 1,
            robots: 64,
            loss: vec![0.0, 0.1],
            crashes: vec![0, 1],
            seed: 5,
            workers: 0,
            engine: EngineArg::Sync,
            out: Some(path.clone()),
        })
        .unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"protocol\": \"flooding\""));
        assert!(json.contains("\"protocol\": \"hop_field\""));

        // The event engine produces the very same document.
        let event_path = std::env::temp_dir().join("anr_cli_fault_sweep_event_test.json");
        run_command(Command::FaultSweep {
            id: 1,
            robots: 64,
            loss: vec![0.0, 0.1],
            crashes: vec![0, 1],
            seed: 5,
            workers: 0,
            engine: EngineArg::Event,
            out: Some(event_path.clone()),
        })
        .unwrap();
        let event_json = std::fs::read_to_string(&event_path).unwrap();
        assert_eq!(json, event_json, "engines must emit identical JSON");
        std::fs::remove_file(path).ok();
        std::fs::remove_file(event_path).ok();
    }

    #[test]
    fn lint_gate_passes_on_this_workspace() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        run_command(Command::Lint {
            root,
            baseline: None,
            jsonl: None,
            graph: None,
            panics: None,
            report_panics: false,
            workers: 1,
            deny: true,
            write_baseline: false,
            list_rules: false,
        })
        .unwrap();
    }

    #[test]
    fn lint_list_rules_runs() {
        run_command(Command::Lint {
            root: std::path::PathBuf::from("."),
            baseline: None,
            jsonl: None,
            graph: None,
            panics: None,
            report_panics: false,
            workers: 1,
            deny: false,
            write_baseline: false,
            list_rules: true,
        })
        .unwrap();
    }

    #[test]
    fn fault_sweep_rejects_excessive_crashes() {
        assert!(matches!(
            run_command(Command::FaultSweep {
                id: 1,
                robots: 64,
                loss: vec![0.0],
                crashes: vec![500],
                seed: 5,
                workers: 0,
                engine: EngineArg::Sync,
                out: None,
            }),
            Err(CliError::BadParameter(_))
        ));
    }
}
