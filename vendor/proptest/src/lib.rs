//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! re-implements the subset of proptest 1.x the workspace's property
//! tests use:
//!
//! * the [`proptest!`] macro (including `#![proptest_config(...)]`),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//! * the [`strategy::Strategy`] trait with `prop_map`, `prop_filter`,
//!   `prop_flat_map`, range/tuple/[`strategy::Just`] strategies,
//! * [`collection::vec`] with the usual size-range conversions.
//!
//! Differences from real proptest: failing inputs are *not* shrunk
//! (the panic message reports the generating seed instead), and
//! `proptest-regressions` files are ignored. Case generation is fully
//! deterministic: the case RNG is derived from the test name and case
//! index, so every run explores the same inputs.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Configuration, the per-case RNG, and the case-execution loop.

    /// Runner configuration (only `cases` is honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Maximum generator/`prop_assume!` rejections tolerated across
        /// the whole test before giving up.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65536,
            }
        }
    }

    /// Why a test case did not complete successfully.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed: the test fails.
        Fail(String),
        /// The case was rejected (`prop_assume!`): try another input.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejection with the given reason.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    /// Deterministic splitmix64 stream feeding the strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a stream from a seed.
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E3779B97F4A7C15,
            }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform integer in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty bound");
            self.next_u64() % bound
        }
    }

    /// FNV-1a, used to derive a per-test base seed from the test name so
    /// different tests explore different (but reproducible) inputs.
    fn fnv1a(name: &str) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Runs the case loop for one `proptest!` test. Panics (failing the
    /// `#[test]`) on the first assertion failure.
    pub fn run<S, F>(config: &ProptestConfig, name: &str, strategy: &S, mut case: F)
    where
        S: crate::strategy::Strategy,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name);
        let mut rejects: u32 = 0;
        let mut passed: u32 = 0;
        let mut attempt: u64 = 0;
        while passed < config.cases {
            let seed = base
                .wrapping_add(attempt.wrapping_mul(0x2545F4914F6CDD1D))
                .wrapping_add(1);
            attempt += 1;
            let mut rng = TestRng::from_seed(seed);
            let value = match strategy.generate(&mut rng) {
                Ok(v) => v,
                Err(why) => {
                    rejects += 1;
                    assert!(
                        rejects <= config.max_global_rejects,
                        "proptest stand-in: too many generator rejections in `{name}` ({why})"
                    );
                    continue;
                }
            };
            match case(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejects += 1;
                    assert!(
                        rejects <= config.max_global_rejects,
                        "proptest stand-in: too many `prop_assume!` rejections in `{name}` ({why})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest stand-in: case {} of `{name}` failed (case seed {seed:#x}): {msg}",
                        passed + 1
                    );
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// `generate` returns `Err` when a filter rejects the draw; the
    /// runner retries with a fresh seed.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, &'static str>;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Rejects generated values failing `pred`.
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                pred,
            }
        }

        /// Generates an intermediate value, then draws from the strategy
        /// it maps to.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy (parity with real proptest's
        /// `.boxed()`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> Result<T, &'static str> {
            Ok(self.0.clone())
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> Result<O, &'static str> {
            self.inner.generate(rng).map(&self.f)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Result<S::Value, &'static str> {
            // Retry locally a few times before punting to the runner, so
            // moderately selective filters do not exhaust its budget.
            for _ in 0..16 {
                let v = self.inner.generate(rng)?;
                if (self.pred)(&v) {
                    return Ok(v);
                }
            }
            Err(self.whence)
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> Result<T::Value, &'static str> {
            let mid = self.inner.generate(rng)?;
            (self.f)(mid).generate(rng)
        }
    }

    /// Reference-counted type-erased strategy.
    #[derive(Clone)]
    pub struct BoxedStrategy<T> {
        inner: std::rc::Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> Result<T, &'static str> {
            self.inner.generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> Result<$t, &'static str> {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    Ok((self.start as i128 + draw as i128) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> Result<$t, &'static str> {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                    let draw = (rng.next_u64() as u128) % span;
                    Ok((*self.start() as i128 + draw as i128) as $t)
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> Result<$t, &'static str> {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = rng.unit_f64() as $t;
                    Ok(self.start + (self.end - self.start) * unit)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> Result<$t, &'static str> {
                    let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                    Ok(self.start() + (self.end() - self.start()) * unit)
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    impl Strategy for Range<char> {
        type Value = char;
        fn generate(&self, rng: &mut TestRng) -> Result<char, &'static str> {
            let lo = self.start as u32;
            let hi = self.end as u32;
            assert!(lo < hi, "empty range strategy");
            for _ in 0..8 {
                let draw = lo + (rng.below(u64::from(hi - lo))) as u32;
                if let Some(c) = char::from_u32(draw) {
                    return Ok(c);
                }
            }
            Err("no valid char in range")
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, &'static str> {
                    let ($($name,)+) = self;
                    Ok(($($name.generate(rng)?,)+))
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (inclusive).
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, &'static str> {
            let len =
                self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let strategy = ($($strat,)*);
                $crate::test_runner::run(
                    &config,
                    concat!(module_path!(), "::", stringify!($name)),
                    &strategy,
                    |($($arg,)*)| {
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

/// Fails the current case (with an optional formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        // Bind first: leaves comparison operators un-negated so user
        // assertions on floats don't trip clippy's partial-ord lint.
        let __prop_assert_holds: bool = $cond;
        if !__prop_assert_holds {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case when the two expressions differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fails the current case when the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case, asking the runner for a fresh input.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(x in 10usize..20, y in -1.0..1.0f64) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn maps_and_filters_compose(
            p in (0.0..100.0f64, 0.0..100.0f64)
                .prop_map(|(a, b)| (a, b))
                .prop_filter("first > 1", |&(a, _)| a > 1.0)
        ) {
            prop_assert!(p.0 > 1.0);
        }

        #[test]
        fn vecs_sized(v in prop::collection::vec(0u64..5, 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_applies(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_property_panics() {
        proptest! {
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        inner();
    }

    #[test]
    fn assume_rejects_and_retries() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            fn inner(x in 0u32..100) {
                prop_assume!(x % 2 == 0);
                prop_assert!(x % 2 == 0);
            }
        }
        inner();
    }
}
