//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides [`Criterion`], [`Bencher`], [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros with wall-clock
//! timing (median of a fixed number of samples) instead of criterion's
//! statistical machinery. Good enough to smoke-run the workspace's
//! benches without network access to crates.io.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub use std::hint::black_box;

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last: Option<Duration>,
}

impl Bencher {
    /// Times `f`, storing the median per-iteration duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up.
        for _ in 0..2 {
            black_box(f());
        }
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed()
            })
            .collect();
        times.sort_unstable();
        self.last = Some(times[times.len() / 2]);
    }
}

/// Benchmark registry and runner.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            last: None,
        };
        f(&mut b);
        match b.last {
            Some(t) => println!("bench {name:<40} median {t:>12?}"),
            None => println!("bench {name:<40} (no measurement)"),
        }
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A named group sharing a sample-size override.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size.unwrap_or(self.parent.sample_size),
            last: None,
        };
        f(&mut b);
        let full = format!("{}/{}", self.name, name);
        match b.last {
            Some(t) => println!("bench {full:<40} median {t:>12?}"),
            None => println!("bench {full:<40} (no measurement)"),
        }
        self
    }

    /// Ends the group (no-op; parity with criterion).
    pub fn finish(self) {}
}

/// Declares a group-runner function invoking each benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_time() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_api_works() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        g.bench_function("noop", |b| b.iter(|| black_box(2 * 2)));
        g.finish();
    }
}
