//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) subset of the `rand 0.8` API the
//! workspace uses: [`rngs::StdRng`]/[`rngs::SmallRng`], [`SeedableRng`]
//! (`seed_from_u64`), and [`Rng::gen_range`] over primitive ranges.
//! All streams are deterministic splitmix64; statistical quality is
//! more than adequate for test-input generation and scenario jitter,
//! which is the only use here.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Minimal core-RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-width byte array in the real crate).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a 64-bit seed (the only constructor the
    /// workspace uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from a half-open or inclusive
/// range by [`Rng::gen_range`].
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Draws uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (low as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                low + (high - low) * unit
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                low + (high - low) * unit
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform sample from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Draws a uniform `f64` in `[0, 1)`.
    fn gen_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Draws a uniform boolean with the given probability of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.gen_unit() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The concrete RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut first = [0u8; 8];
            first.copy_from_slice(&seed[..8]);
            Self::seed_from_u64(u64::from_le_bytes(first))
        }

        fn seed_from_u64(state: u64) -> Self {
            StdRng {
                state: state ^ 0x5DEECE66D,
            }
        }
    }

    /// Small RNG — same generator as [`StdRng`] in this stand-in.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn float_range_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&x));
        }
    }

    #[test]
    fn int_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
