//! The hardest setting of the evaluation (Sec. IV-C): both the current
//! and the target FoI have holes. Runs scenarios 6 and 7 with all four
//! methods and renders the deployments.
//!
//! ```sh
//! cargo run --release --example hole_to_hole
//! ```

use anr_marching::march::{
    direct_translation, hungarian_direct, march, MarchConfig, MarchProblem, Method,
};
use anr_marching::netgraph::UnitDiskGraph;
use anr_marching::scenarios::{build_scenario, ScenarioParams};
use anr_marching::viz::SvgCanvas;
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = PathBuf::from("target/figures");
    std::fs::create_dir_all(&out_dir)?;
    let config = MarchConfig::default();

    for id in [6u8, 7] {
        let scenario = build_scenario(id, &ScenarioParams::default())?;
        println!(
            "scenario {id}: {} (M1 holes: {}, M2 holes: {})",
            scenario.name,
            scenario.m1.holes().len(),
            scenario.m2.holes().len(),
        );
        let problem = MarchProblem::with_lattice_deployment(
            scenario.m1.clone(),
            scenario.m2.clone(),
            scenario.robots,
            scenario.range,
        )?;
        let initial = UnitDiskGraph::new(&problem.positions, problem.range);

        println!("  {:<22} {:>8} {:>12} {:>3}", "method", "L", "D (m)", "C");
        for (name, outcome) in [
            (
                "our method (a)",
                march(&problem, Method::MaxStableLinks, &config)?,
            ),
            (
                "our method (b)",
                march(&problem, Method::MinMovingDistance, &config)?,
            ),
            ("direct translation", direct_translation(&problem, &config)?),
            ("Hungarian method", hungarian_direct(&problem, &config)?),
        ] {
            println!(
                "  {:<22} {:>8.3} {:>12.0} {:>3}",
                name,
                outcome.metrics.stable_link_ratio,
                outcome.metrics.total_distance,
                outcome.metrics.global_connectivity,
            );

            if name == "our method (a)" {
                // Render M1 + M2 with trajectories (Fig. 5 style).
                let after = UnitDiskGraph::new(&outcome.final_positions, problem.range);
                let mut svg = SvgCanvas::fitting([scenario.m1.bbox(), scenario.m2.bbox()], 1100.0);
                svg.region(
                    &scenario.m1,
                    anr_marching::viz::palette::FOI_FILL,
                    anr_marching::viz::palette::FOI_STROKE,
                );
                svg.region(
                    &scenario.m2,
                    anr_marching::viz::palette::FOI_FILL,
                    anr_marching::viz::palette::FOI_STROKE,
                );
                for path in outcome.transition.paths() {
                    svg.polyline(
                        path.waypoints(),
                        anr_marching::viz::palette::TRAJECTORY,
                        0.5,
                    );
                }
                for &p in &problem.positions {
                    svg.robot(p, 2.0, "#777777");
                }
                for &(i, j) in &after.links() {
                    let color = if initial.has_link(i, j) {
                        anr_marching::viz::palette::PRESERVED
                    } else {
                        anr_marching::viz::palette::NEW
                    };
                    svg.line(
                        outcome.final_positions[i],
                        outcome.final_positions[j],
                        color,
                        1.0,
                    );
                }
                for &p in &outcome.final_positions {
                    svg.robot(p, 2.5, anr_marching::viz::palette::ROBOT);
                }
                svg.save(out_dir.join(format!("fig5_scenario{id}.svg")))?;
            }
        }
    }
    println!("figures written to {}", out_dir.display());
    Ok(())
}
