//! Quickstart: march 144 robots from one field of interest to another
//! and print the paper's three headline metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use anr_marching::march::{
    direct_translation, hungarian_direct, march, MarchConfig, MarchProblem, Method,
};
use anr_marching::scenarios::{build_scenario, ScenarioParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Scenario 1 of the paper: both FoIs hole-free, 144 robots with an
    // 80 m communication range, 30 communication ranges apart.
    let scenario = build_scenario(1, &ScenarioParams::default())?;
    println!("scenario 1: {}", scenario.name);
    println!(
        "  M1 area {:.0} m², M2 area {:.0} m², separation {:.0} m",
        scenario.m1.area(),
        scenario.m2.area(),
        scenario.m1.centroid().distance(scenario.m2.centroid()),
    );

    let problem = MarchProblem::with_lattice_deployment(
        scenario.m1,
        scenario.m2,
        scenario.robots,
        scenario.range,
    )?;
    let config = MarchConfig::default();

    println!("\n{:<22} {:>8} {:>12} {:>3}", "method", "L", "D (m)", "C");
    for (name, outcome) in [
        (
            "our method (a)",
            march(&problem, Method::MaxStableLinks, &config)?,
        ),
        (
            "our method (b)",
            march(&problem, Method::MinMovingDistance, &config)?,
        ),
        ("direct translation", direct_translation(&problem, &config)?),
        ("Hungarian method", hungarian_direct(&problem, &config)?),
    ] {
        println!(
            "{:<22} {:>8.3} {:>12.0} {:>3}",
            name,
            outcome.metrics.stable_link_ratio,
            outcome.metrics.total_distance,
            outcome.metrics.global_connectivity,
        );
    }
    println!(
        "\nL = total stable link ratio (higher is better), D = total moving \
         distance, C = global connectivity maintained throughout"
    );
    Ok(())
}
