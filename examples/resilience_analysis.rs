//! Resilience and energy analysis of a marching run — the paper's two
//! motivating arguments made quantitative: (1) "the failure of an
//! individual robot can be recovered by its peers" (resilience), and
//! (2) preserving links "saves a lot of energy on updating new
//! connections" (energy).
//!
//! ```sh
//! cargo run --release --example resilience_analysis
//! ```

use anr_marching::march::{
    hungarian_direct, march, replan_midway, EnergyModel, MarchConfig, MarchProblem, Method,
    ResilienceReport,
};
use anr_marching::scenarios::{build_scenario, ScenarioParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = build_scenario(4, &ScenarioParams::default())?;
    println!("scenario 4: {}", scenario.name);
    let problem = MarchProblem::with_lattice_deployment(
        scenario.m1,
        scenario.m2,
        scenario.robots,
        scenario.range,
    )?;
    let config = MarchConfig::default();

    let ours = march(&problem, Method::MaxStableLinks, &config)?;
    let hung = hungarian_direct(&problem, &config)?;

    // --- Energy: price the link churn. -------------------------------
    println!("\nenergy (default model: 2 J/m motion, 50 J/link handshake):");
    let model = EnergyModel::default();
    for (name, outcome) in [("our method (a)", &ours), ("Hungarian", &hung)] {
        let report = model.evaluate(&outcome.metrics, problem.num_robots());
        println!("  {name:<16} {report}");
    }

    // --- Resilience of the final deployment. -------------------------
    println!("\nfinal-deployment resilience:");
    for (name, outcome) in [("our method (a)", &ours), ("Hungarian", &hung)] {
        let r = ResilienceReport::of(&outcome.final_positions, problem.range);
        println!(
            "  {name:<16} connected={} biconnected={} articulation_robots={} min_degree={} k≥{}",
            r.connected,
            r.biconnected,
            r.articulation_robots.len(),
            r.min_degree,
            r.vertex_connectivity,
        );
    }

    // --- Unexpected event: lose three robots mid-march and replan. ---
    println!("\nunexpected event: robots 10, 57 and 101 fail at mid-transition");
    let replan = replan_midway(&problem, &ours, &[10, 57, 101])?;
    println!(
        "  survivors: {} (still one network: {})",
        replan.survivors.len(),
        replan.survivors_connected,
    );
    println!(
        "  fresh plan: L = {:.3}, D = {:.0} m, C = {} — nobody was lost",
        replan.plan.metrics.stable_link_ratio,
        replan.plan.metrics.total_distance,
        replan.plan.metrics.global_connectivity,
    );
    Ok(())
}
