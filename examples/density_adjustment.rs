//! Density-adjusted deployment (paper Sec. IV-E, Fig. 6): encode a task
//! requirement — "the closer to the hole, the more mobile robots are
//! needed" — into the centroid computation, and watch the swarm
//! concentrate around the hole.
//!
//! ```sh
//! cargo run --release --example density_adjustment
//! ```

use anr_marching::coverage::Density;
use anr_marching::march::{march, MarchConfig, MarchProblem, Method};
use anr_marching::netgraph::UnitDiskGraph;
use anr_marching::scenarios::{build_scenario, ScenarioParams};
use anr_marching::viz::SvgCanvas;
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = PathBuf::from("target/figures");
    std::fs::create_dir_all(&out_dir)?;

    // The modified fourth scenario of Sec. IV-E: march into the
    // flower-pond FoI with a hole-proximity density.
    let scenario = build_scenario(3, &ScenarioParams::default())?;
    let problem = MarchProblem::with_lattice_deployment(
        scenario.m1.clone(),
        scenario.m2.clone(),
        scenario.robots,
        scenario.range,
    )?;

    let uniform_cfg = MarchConfig::default();
    let dense_cfg = MarchConfig {
        density: Density::HoleProximity {
            falloff: 100.0,
            gain: 30.0,
        },
        lloyd: anr_marching::coverage::LloydConfig {
            tolerance: 0.5,
            max_iterations: 80,
            ..Default::default()
        },
        ..Default::default()
    };

    let uniform = march(&problem, Method::MaxStableLinks, &uniform_cfg)?;
    let dense = march(&problem, Method::MaxStableLinks, &dense_cfg)?;

    // Histogram: robot density (robots per 10,000 m²) per distance band
    // from the hole. Band areas are estimated from the region's sample
    // grid so concave boundaries are handled correctly.
    let bands = [0.0, 60.0, 120.0, 180.0, 240.0, f64::INFINITY];
    let grid = scenario.m2.grid_points(8.0);
    let cell = 64.0; // m² per sample
    println!("robot density per distance-to-hole band (robots / 10^4 m²):");
    println!("{:>12} {:>9} {:>13}", "band (m)", "uniform", "hole-density");
    for w in bands.windows(2) {
        let band_area = grid
            .iter()
            .filter(|p| {
                let d = scenario.m2.distance_to_holes(**p);
                d >= w[0] && d < w[1]
            })
            .count() as f64
            * cell;
        if band_area == 0.0 {
            continue;
        }
        let density = |pts: &[anr_marching::geom::Point]| {
            let count = pts
                .iter()
                .filter(|p| {
                    let d = scenario.m2.distance_to_holes(**p);
                    d >= w[0] && d < w[1]
                })
                .count();
            count as f64 / band_area * 1e4
        };
        println!(
            "{:>5.0}-{:<6.0} {:>9.2} {:>13.2}",
            w[0],
            if w[1].is_finite() { w[1] } else { 999.0 },
            density(&uniform.final_positions),
            density(&dense.final_positions),
        );
    }

    // Both deployments keep the network connected.
    for (name, out) in [("uniform", &uniform), ("hole-density", &dense)] {
        let g = UnitDiskGraph::new(&out.final_positions, problem.range);
        println!(
            "{name}: C = {}, final network connected = {}, L = {:.3}",
            out.metrics.global_connectivity,
            g.is_connected(),
            out.metrics.stable_link_ratio,
        );
    }

    // Fig. 6 panels.
    for (file, out) in [("fig6_uniform.svg", &uniform), ("fig6_density.svg", &dense)] {
        let g = UnitDiskGraph::new(&out.final_positions, problem.range);
        let mut svg = SvgCanvas::fitting([scenario.m2.bbox()], 640.0);
        svg.deployment(&scenario.m2, &out.final_positions, &g.links(), |_, _| true);
        svg.save(out_dir.join(file))?;
    }
    println!("figures written to {}", out_dir.display());
    Ok(())
}
