//! Renders a marching transition as numbered SVG frames — the swarm
//! leaving M1, crossing the gap, filling M2 and settling into coverage
//! positions. Stitch with any tool (e.g. ImageMagick or ffmpeg) for an
//! animation.
//!
//! ```sh
//! cargo run --release --example animate_transition
//! # frames land in target/figures/animation/frame_000.svg ...
//! ```

use anr_marching::march::{march, MarchConfig, MarchProblem, Method};
use anr_marching::netgraph::UnitDiskGraph;
use anr_marching::scenarios::{build_scenario, ScenarioParams};
use anr_marching::viz::{palette, SvgCanvas};
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = PathBuf::from("target/figures/animation");
    std::fs::create_dir_all(&out_dir)?;

    let scenario = build_scenario(
        3,
        &ScenarioParams {
            separation_ranges: 12.0, // compact frame
            ..Default::default()
        },
    )?;
    let problem = MarchProblem::with_lattice_deployment(
        scenario.m1.clone(),
        scenario.m2.clone(),
        scenario.robots,
        scenario.range,
    )?;
    let initial = UnitDiskGraph::new(&problem.positions, problem.range);
    let outcome = march(&problem, Method::MaxStableLinks, &MarchConfig::default())?;

    // One frame per timeline row, subsampled to ~40 frames.
    let stride = (outcome.timeline.len() / 40).max(1);
    let mut frame = 0usize;
    for (k, row) in outcome.timeline.iter().enumerate() {
        if k % stride != 0 && k + 1 != outcome.timeline.len() {
            continue;
        }
        let g = UnitDiskGraph::new(row, problem.range);
        let mut svg = SvgCanvas::fitting([scenario.m1.bbox(), scenario.m2.bbox()], 1100.0);
        svg.region(&scenario.m1, palette::FOI_FILL, palette::FOI_STROKE);
        svg.region(&scenario.m2, palette::FOI_FILL, palette::FOI_STROKE);
        for (i, j) in g.links() {
            let color = if initial.has_link(i, j) {
                palette::PRESERVED
            } else {
                palette::NEW
            };
            svg.line(row[i], row[j], color, 0.8);
        }
        for &p in row {
            svg.robot(p, 2.2, palette::ROBOT);
        }
        svg.save(out_dir.join(format!("frame_{frame:03}.svg")))?;
        frame += 1;
    }

    println!(
        "{frame} frames written to {} (timeline had {} samples; L = {:.3}, C = {})",
        out_dir.display(),
        outcome.timeline.len(),
        outcome.metrics.stable_link_ratio,
        outcome.metrics.global_connectivity,
    );
    println!(
        "stitch: ffmpeg -i {}/frame_%03d.svg transition.gif",
        out_dir.display()
    );
    Ok(())
}
