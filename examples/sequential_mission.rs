//! Sequential mission (paper Definition 6): the swarm explores several
//! fields of interest one after another, marching between them with the
//! harmonic-map method. Each leg starts where the previous one ended, so
//! the tour measures how the method holds up under compounding
//! deployments.
//!
//! ```sh
//! cargo run --release --example sequential_mission
//! ```

use anr_marching::geom::{Point, PolygonWithHoles};
use anr_marching::march::{march_mission, MarchConfig, Method, Mission};
use anr_marching::netgraph::{is_biconnected, UnitDiskGraph};
use anr_marching::scenarios::{blob, flower};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A four-stop tour: blob → elongated blob → flower-pond FoI → blob.
    let foi1 = PolygonWithHoles::without_holes(blob(Point::ORIGIN, 280_000.0, 5, 56)?);
    let foi2 = PolygonWithHoles::without_holes(blob(Point::new(2200.0, 600.0), 220_000.0, 17, 56)?);
    let foi3 = {
        let outer = blob(Point::new(4500.0, -300.0), 260_000.0, 29, 56)?;
        let pond = flower(Point::new(4450.0, -250.0), 60.0, 5, 0.3, 40)?;
        PolygonWithHoles::new(outer, vec![pond])?
    };
    let foi4 = PolygonWithHoles::without_holes(blob(Point::new(6800.0, 400.0), 300_000.0, 41, 56)?);

    let mission = Mission::new(vec![foi1, foi2, foi3, foi4], 144, 80.0);
    println!(
        "mission: {} robots, {} FoIs, {} marching legs",
        mission.robots,
        mission.fois.len(),
        mission.num_legs(),
    );

    let outcome = march_mission(&mission, Method::MaxStableLinks, &MarchConfig::default())?;

    println!(
        "\n{:<6} {:>8} {:>12} {:>3} {:>9} {:>12}",
        "leg", "L", "D (m)", "C", "repaired", "biconnected"
    );
    for (k, leg) in outcome.legs.iter().enumerate() {
        let g = UnitDiskGraph::new(&leg.final_positions, mission.range);
        println!(
            "{:<6} {:>8.3} {:>12.0} {:>3} {:>9} {:>12}",
            format!("{} → {}", k + 1, k + 2),
            leg.metrics.stable_link_ratio,
            leg.metrics.total_distance,
            leg.metrics.global_connectivity,
            leg.repair.adjusted_robots.len(),
            is_biconnected(&g),
        );
    }
    println!(
        "\nmission totals: D = {:.0} m, mean L = {:.3}, connectivity on every leg = {}",
        outcome.metrics.total_distance,
        outcome.metrics.mean_stable_link_ratio,
        outcome.metrics.global_connectivity == 1,
    );
    Ok(())
}
