//! Renders every stage of the marching pipeline as SVG — the panels of
//! the paper's Fig. 2: (a) connectivity graph in M1, (b) extracted
//! triangulation, (c) harmonic map of T to the unit disk, (d) the target
//! FoI mesh, (e) redeployment after the harmonic transition with
//! preserved (blue) / new (red) links, (f) optimal coverage positions.
//!
//! ```sh
//! cargo run --release --example pipeline_stages
//! # SVGs are written to target/figures/
//! ```

use anr_marching::geom::{Aabb, Point};
use anr_marching::harmonic::{fill_holes, harmonic_map_to_disk, HarmonicConfig};
use anr_marching::march::{march, MarchConfig, MarchProblem, Method};
use anr_marching::mesh::FoiMesher;
use anr_marching::netgraph::{extract_triangulation, UnitDiskGraph};
use anr_marching::scenarios::{build_scenario, ScenarioParams};
use anr_marching::viz::{palette, SvgCanvas};
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = PathBuf::from("target/figures");
    std::fs::create_dir_all(&out_dir)?;

    // Scenario 3: the flower-pond target FoI of Fig. 2(d).
    let scenario = build_scenario(3, &ScenarioParams::default())?;
    let problem = MarchProblem::with_lattice_deployment(
        scenario.m1.clone(),
        scenario.m2.clone(),
        scenario.robots,
        scenario.range,
    )?;
    let initial_graph = UnitDiskGraph::new(&problem.positions, problem.range);

    // (a) Connectivity graph of the deployment in M1.
    let mut svg = SvgCanvas::fitting([scenario.m1.bbox()], 640.0);
    svg.deployment(
        &scenario.m1,
        &problem.positions,
        &initial_graph.links(),
        |_, _| true,
    );
    svg.save(out_dir.join("fig2a_connectivity_m1.svg"))?;

    // (b) Extracted triangulation T.
    let t_mesh = extract_triangulation(&problem.positions, problem.range)?;
    let mut svg = SvgCanvas::fitting([scenario.m1.bbox()], 640.0);
    svg.region(&scenario.m1, palette::FOI_FILL, palette::FOI_STROKE);
    for (a, b) in t_mesh.edges() {
        svg.line(t_mesh.vertex(a), t_mesh.vertex(b), palette::PRESERVED, 1.0);
    }
    for &p in t_mesh.vertices() {
        svg.robot(p, 2.5, palette::ROBOT);
    }
    svg.save(out_dir.join("fig2b_triangulation.svg"))?;

    // (c) Harmonic map of T onto the unit disk.
    let filled_t = fill_holes(&t_mesh)?;
    let disk_t = harmonic_map_to_disk(filled_t.mesh(), &HarmonicConfig::default())?;
    let disk_box = Aabb::new(Point::new(-1.1, -1.1), Point::new(1.1, 1.1));
    let mut svg = SvgCanvas::fitting([disk_box], 640.0);
    let dmesh = disk_t.as_disk_mesh(filled_t.mesh());
    for (a, b) in dmesh.edges() {
        svg.line(dmesh.vertex(a), dmesh.vertex(b), palette::PRESERVED, 0.8);
    }
    for &p in dmesh.vertices() {
        svg.robot(p, 2.0, palette::ROBOT);
    }
    svg.save(out_dir.join("fig2c_disk_map.svg"))?;

    // (d) The meshed target FoI with its flower-shaped pond.
    let spacing =
        MarchConfig::default().resolve_mesh_spacing(scenario.m2.area(), problem.num_robots());
    let foi2 = FoiMesher::new(spacing).mesh(&scenario.m2)?;
    let mut svg = SvgCanvas::fitting([scenario.m2.bbox()], 640.0);
    svg.region(&scenario.m2, palette::FOI_FILL, palette::FOI_STROKE);
    let m2_mesh = foi2.mesh();
    for (a, b) in m2_mesh.edges() {
        svg.line(m2_mesh.vertex(a), m2_mesh.vertex(b), "#b0a890", 0.6);
    }
    svg.save(out_dir.join("fig2d_target_mesh.svg"))?;

    // Run the full pipeline (method a).
    let outcome = march(&problem, Method::MaxStableLinks, &MarchConfig::default())?;

    // (e) After the harmonic transition: blue = preserved, red = new.
    let after = UnitDiskGraph::new(&outcome.mapped, problem.range);
    let mut svg = SvgCanvas::fitting([scenario.m2.bbox()], 640.0);
    svg.deployment(&scenario.m2, &outcome.mapped, &after.links(), |i, j| {
        initial_graph.has_link(i, j)
    });
    svg.save(out_dir.join("fig2e_after_transition.svg"))?;

    // (f) Final optimal coverage positions.
    let final_graph = UnitDiskGraph::new(&outcome.final_positions, problem.range);
    let mut svg = SvgCanvas::fitting([scenario.m2.bbox()], 640.0);
    svg.deployment(
        &scenario.m2,
        &outcome.final_positions,
        &final_graph.links(),
        |i, j| initial_graph.has_link(i, j),
    );
    svg.save(out_dir.join("fig2f_final_coverage.svg"))?;

    println!("pipeline stages written to {}", out_dir.display());
    println!(
        "metrics: L = {:.3}, D = {:.0} m, C = {}, rotation = {:.3} rad, \
         {} robots re-targeted by the connectivity repair",
        outcome.metrics.stable_link_ratio,
        outcome.metrics.total_distance,
        outcome.metrics.global_connectivity,
        outcome.rotation,
        outcome.repair.adjusted_robots.len(),
    );
    Ok(())
}
